"""Stratified sampling over keyed records (the GROUP BY sampling design).

Uniform sampling starves rare groups: a key holding 1 % of a table gets
1 % of every sample, so its estimate converges ~100x slower than the
head key's and the whole query is held hostage by its laggard.  A
stratified design samples **within** each group instead — every group's
sample is uniform-without-replacement over *that group's* rows, and the
per-round budget is divided between groups by an allocation policy:

* ``"uniform"`` — equal quota per stratum ("senate" allocation: every
  group gets the same representation regardless of population);
* ``"proportional"`` — quota ∝ stratum population ("house" allocation;
  reproduces plain uniform table sampling in expectation);
* ``"neyman"`` — quota ∝ N_h·S_h (population × dispersion): the
  classical variance-minimizing allocation, using per-stratum scale
  estimates from a pilot (falls back to proportional until scales are
  known).

The sampler is the keyed-record counterpart of the in-memory helpers in
:mod:`repro.sampling.base`: it materializes one permutation per stratum
(prefixes = uniform samples without replacement, exactly the design of
:class:`~repro.core.EarlSession` within each group), tracks consumption,
and allocates integer quotas by largest remainder with caps at each
stratum's remaining rows — deterministic for a fixed seed, so the
grouped drivers built on top are reproducible across executor backends.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int

#: Allocation policy names (see module docstring).
ALLOCATION_UNIFORM = "uniform"
ALLOCATION_PROPORTIONAL = "proportional"
ALLOCATION_NEYMAN = "neyman"

ALLOCATIONS = (ALLOCATION_UNIFORM, ALLOCATION_PROPORTIONAL,
               ALLOCATION_NEYMAN)


def allocate_with_caps(weights: Sequence[float], total: int,
                       caps: Sequence[int],
                       floors: Optional[Sequence[int]] = None) -> List[int]:
    """Allocate ``total`` integer units ∝ ``weights``, capped per slot.

    Largest-remainder rounding (the same scheme as
    :func:`repro.sampling.base.allocate_per_split`), then any excess over
    a slot's cap is redistributed among the uncapped slots — repeated
    until everything is placed or every slot is full.  Deterministic:
    ties break on slot order.

    ``floors`` optionally guarantees each slot a minimum (clipped to its
    cap) before the weighted split of the rest — the liveness guarantee
    the cross-query budget allocator needs, so a near-zero-weight slot
    still progresses every round instead of starving.  When ``total``
    cannot cover the floors, the floors themselves are allocated by
    largest remainder and no weighted pass runs.
    """
    if total < 0:
        raise ValueError("total cannot be negative")
    weights = np.asarray(weights, dtype=float)
    caps_arr = np.asarray(caps, dtype=np.int64)
    if weights.shape != caps_arr.shape:
        raise ValueError("weights and caps must have matching lengths")
    if np.any(weights < 0):
        raise ValueError("weights cannot be negative")
    if floors is not None:
        floors_arr = np.minimum(np.asarray(floors, dtype=np.int64),
                                caps_arr)
        if floors_arr.shape != caps_arr.shape:
            raise ValueError("floors and caps must have matching lengths")
        if np.any(floors_arr < 0):
            raise ValueError("floors cannot be negative")
        need = int(floors_arr.sum())
        if need >= total:
            return allocate_with_caps(floors_arr.astype(float), total,
                                      floors_arr)
        rest = allocate_with_caps(weights, total - need,
                                  caps_arr - floors_arr)
        return [int(f + r) for f, r in zip(floors_arr, rest)]
    counts = np.zeros(len(weights), dtype=np.int64)
    remaining = min(int(total), int(caps_arr.sum()))
    open_slots = caps_arr > 0
    while remaining > 0 and open_slots.any():
        w = np.where(open_slots, weights, 0.0)
        if w.sum() <= 0.0:
            # No informative weights among the open slots: spread evenly.
            w = open_slots.astype(float)
        shares = w / w.sum() * remaining
        step = np.floor(shares).astype(np.int64)
        leftover = remaining - int(step.sum())
        if leftover > 0:
            # Hand leftover units to the largest fractional parts among
            # open slots (argsort is stable: ties go to earlier slots).
            frac = np.where(open_slots, shares - step, -1.0)
            for slot in np.argsort(-frac, kind="stable")[:leftover]:
                step[slot] += 1
        step = np.minimum(step, caps_arr - counts)
        counts += step
        remaining -= int(step.sum())
        open_slots = counts < caps_arr
        if int(step.sum()) == 0:
            # Every open slot rounded to zero (total < open slot count
            # after capping): give one unit at a time by weight order.
            order = np.argsort(-np.where(open_slots, weights, -1.0),
                               kind="stable")
            for slot in order:
                if remaining == 0:
                    break
                if open_slots[slot]:
                    counts[slot] += 1
                    remaining -= 1
            open_slots = counts < caps_arr
    return [int(c) for c in counts]


class StratifiedSampler:
    """Per-stratum uniform sampling with policy-driven quota allocation.

    Parameters
    ----------
    keys:
        One group key per table row; strata are formed in order of first
        appearance (a stable order every consumer shares).
    allocation:
        Quota policy for :meth:`allocate` — one of :data:`ALLOCATIONS`.
    seed:
        Seeds the per-stratum permutations drawn lazily on first use.
        A caller that owns per-stratum RNG streams (the grouped EARL
        session does, to stay byte-identical with solo sessions) may
        instead install them via :meth:`attach_rng` before any draw.

    Example
    -------
    >>> sampler = StratifiedSampler(["a", "b", "a", "b", "b"], seed=0)
    >>> sampler.populations == {"a": 2, "b": 3}
    True
    >>> quotas = sampler.allocate(3)          # proportional by default
    >>> sum(quotas.values())
    3
    """

    def __init__(self, keys: Sequence[Hashable], *,
                 allocation: str = ALLOCATION_PROPORTIONAL,
                 seed: SeedLike = None) -> None:
        if allocation not in ALLOCATIONS:
            raise ValueError(f"unknown allocation {allocation!r}; "
                             f"known: {list(ALLOCATIONS)}")
        if len(keys) == 0:
            raise ValueError("keys must be non-empty")
        self.allocation = allocation
        self._rng = ensure_rng(seed)
        self._keys: List[Hashable] = []
        rows: Dict[Hashable, List[int]] = {}
        for row, key in enumerate(keys):
            bucket = rows.get(key)
            if bucket is None:
                rows[key] = bucket = []
                self._keys.append(key)
            bucket.append(row)
        self._rows: Dict[Hashable, np.ndarray] = {
            key: np.asarray(positions, dtype=np.int64)
            for key, positions in rows.items()}
        self._orders: Dict[Hashable, np.ndarray] = {}
        self._consumed: Dict[Hashable, int] = {key: 0 for key in self._keys}
        self._scales: Dict[Hashable, float] = {}

    # ------------------------------------------------------------- inventory
    @property
    def keys(self) -> List[Hashable]:
        """Stratum keys in order of first appearance."""
        return list(self._keys)

    @property
    def populations(self) -> Dict[Hashable, int]:
        """Rows per stratum."""
        return {key: len(self._rows[key]) for key in self._keys}

    def population(self, key: Hashable) -> int:
        return len(self._rows[key])

    def consumed(self, key: Hashable) -> int:
        return self._consumed[key]

    def remaining(self, key: Hashable) -> int:
        return len(self._rows[key]) - self._consumed[key]

    @property
    def sampled_count(self) -> int:
        """Total rows consumed across every stratum."""
        return sum(self._consumed.values())

    def rows(self, key: Hashable) -> np.ndarray:
        """Table-row indices of ``key``'s stratum, in appearance order."""
        return self._rows[key]

    # ------------------------------------------------------------ randomness
    def attach_rng(self, key: Hashable, rng: np.random.Generator) -> None:
        """Draw ``key``'s permutation *now* from a caller-owned stream.

        Must happen before the stratum's first :meth:`peek`/:meth:`take`
        (a lazily drawn permutation cannot be replaced — samples already
        handed out would silently change design).
        """
        if key in self._orders:
            raise RuntimeError(f"stratum {key!r} is already permuted")
        self._orders[key] = rng.permutation(len(self._rows[key]))

    def order(self, key: Hashable) -> np.ndarray:
        """``key``'s within-stratum permutation (drawn on first use).

        Prefixes of ``rows(key)[order(key)]`` are uniform samples without
        replacement from the stratum.
        """
        order = self._orders.get(key)
        if order is None:
            order = self._rng.permutation(len(self._rows[key]))
            self._orders[key] = order
        return order

    # ------------------------------------------------------------ allocation
    def set_scale(self, key: Hashable, scale: float) -> None:
        """Install a dispersion estimate (e.g. a pilot's std) for Neyman
        allocation; non-finite or negative scales are rejected."""
        if not np.isfinite(scale) or scale < 0:
            raise ValueError(f"scale must be finite and >= 0, got {scale}")
        self._scales[key] = float(scale)

    def weights(self, active: Sequence[Hashable]) -> np.ndarray:
        """Allocation weights for ``active`` strata under the policy."""
        if self.allocation == ALLOCATION_UNIFORM:
            return np.ones(len(active))
        pops = np.array([self.population(k) for k in active], dtype=float)
        if self.allocation == ALLOCATION_PROPORTIONAL:
            return pops
        # Neyman: N_h * S_h; fall back to proportional until every
        # active stratum has a scale (a partial scale map would bias
        # the split toward whichever groups happened to report first).
        if not all(k in self._scales for k in active):
            return pops
        return pops * np.array([self._scales[k] for k in active])

    def allocate(self, total: int,
                 active: Optional[Sequence[Hashable]] = None
                 ) -> Dict[Hashable, int]:
        """Split a round budget of ``total`` rows across strata.

        ``active`` restricts the split (default: every stratum); quotas
        are capped at each stratum's remaining rows, with the excess
        redistributed, so the returned quotas are always drawable.
        """
        check_positive_int("total", total)
        strata = list(active) if active is not None else self.keys
        caps = [self.remaining(k) for k in strata]
        counts = allocate_with_caps(self.weights(strata), total, caps)
        return dict(zip(strata, counts))

    # ------------------------------------------------------------- drawing
    def peek(self, key: Hashable, count: int) -> np.ndarray:
        """First ``count`` sampled table rows of ``key`` — *without*
        consuming them (the pilot is a prefix of the same sample the
        expansion loop will walk, exactly like the solo drivers)."""
        if count < 0 or count > self.population(key):
            raise ValueError(
                f"cannot peek {count} rows of stratum {key!r} "
                f"holding {self.population(key)}")
        return self._rows[key][self.order(key)[:count]]

    def take(self, key: Hashable, count: int) -> np.ndarray:
        """Consume and return the next ``count`` sampled table rows of
        ``key`` (uniform without replacement within the stratum)."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if count > self.remaining(key):
            raise ValueError(
                f"cannot draw {count} rows from stratum {key!r} with "
                f"{self.remaining(key)} remaining")
        lo = self._consumed[key]
        self._consumed[key] = lo + count
        return self._rows[key][self.order(key)[lo:lo + count]]
