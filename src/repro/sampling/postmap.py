"""Post-map sampling (paper §3.3, Algorithm 1).

Reads and parses the *entire* split once, stores every record in the
mapper's local hashmap, then releases uniformly random records **without
replacement** toward the reducer.  Compared to pre-map sampling the load
time is a full scan (Fig. 9 shows the gap), but the count of ``(key,
value)`` pairs is exact, which matters when the user's ``correct()``
needs an accurate sample fraction ``p``.

Because EARL keeps mappers alive across iterations (§2.1), the hashmap
survives sample expansions: growing the sample costs no additional I/O,
only the release of more already-loaded pairs (Algorithm 1, lines 9-15).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.record_reader import LineRecordReader
from repro.hdfs.splits import InputSplit
from repro.mapreduce.types import KeyValue
from repro.sampling.base import allocate_per_split
from repro.util.validation import check_positive_int


class PostMapSampler:
    """Stateful record source implementing Algorithm 1."""

    #: A sampled stand-in record is a proxy for ``logical_scale``
    #: records of the real sample (fraction-based sample sizing, §3.2).
    scales_with_file = True
    #: Stateful across splits (cumulative ``sampled_count`` the driver
    #: reads) — the wave must stay serial.
    parallel_safe = False

    def __init__(self, fs: HDFS, path: str, *,
                 split_logical_bytes: Optional[int] = None,
                 cached: bool = True) -> None:
        self._fs = fs
        self._path = path
        self._cached = cached
        self._splits: List[InputSplit] = fs.get_splits(path, split_logical_bytes)
        #: split index -> all (offset, line) records, loaded lazily once.
        self._cache: Dict[int, List[Tuple[int, str]]] = {}
        #: split index -> how many records have been released so far; the
        #: cached record list is pre-shuffled, so a prefix is a uniform
        #: sample without replacement.
        self._released: Dict[int, int] = {s.index: 0 for s in self._splits}
        self._targets: Dict[int, int] = {s.index: 0 for s in self._splits}
        self._total_target = 0

    # ------------------------------------------------------------- control
    @property
    def splits(self) -> List[InputSplit]:
        return list(self._splits)

    @property
    def sampled_count(self) -> int:
        return sum(self._released.values())

    def total_pairs(self) -> Optional[int]:
        """Exact record count, known only after every split was loaded.

        This is post-map sampling's advantage: the exact total makes the
        sample fraction ``p`` (and hence ``correct()``) accurate.
        """
        if len(self._cache) < len(self._splits):
            return None
        return sum(len(records) for records in self._cache.values())

    def set_total_target(self, total: int) -> None:
        """Raise the cumulative sample-size target to ``total`` records."""
        check_positive_int("total", total)
        if total < self._total_target:
            raise ValueError(
                f"sample target cannot shrink ({self._total_target} -> {total})")
        self._total_target = total
        for split, count in zip(self._splits,
                                allocate_per_split(self._splits, total)):
            self._targets[split.index] = max(self._targets[split.index], count)

    # ------------------------------------------------------------ sampling
    def read(self, fs: HDFS, split: InputSplit, ledger: CostLedger,
             rng: np.random.Generator) -> Iterator[KeyValue]:
        """Release this split's outstanding quota of cached records."""
        records = self._load_split(split, ledger, rng)
        released = self._released[split.index]
        quota = min(self._targets.get(split.index, 0), len(records))
        for i in range(released, quota):
            yield records[i]
        self._released[split.index] = max(released, quota)

    def _load_split(self, split: InputSplit, ledger: CostLedger,
                    rng: np.random.Generator) -> List[Tuple[int, str]]:
        if split.index in self._cache:
            return self._cache[split.index]
        # ``cached=True`` loads through the filesystem's columnar split
        # cache (one newline scan + decode per split, shared with every
        # other reader over the same fs); ``cached=False`` is the scalar
        # newline-scanning reference.  Records, their order and the
        # simulated charges are byte-identical either way.
        reader = LineRecordReader(self._fs, split, ledger=ledger,
                                  cached=self._cached)
        records = list(reader.read_records())
        # Parsing every stored record costs CPU proportional to the
        # *logical* record count, exactly like a full scan.
        meta = self._fs.namenode.get(self._path)
        ledger.charge_cpu_records(len(records) * meta.logical_scale)
        # Pre-shuffle once: prefixes of a random permutation are uniform
        # samples without replacement, and the order is frozen so sample
        # expansion extends (never resamples) the released prefix.  The
        # permutation is a single batch draw; applying it via a list of
        # native ints keeps the hot loop free of per-item conversions.
        order = rng.permutation(len(records))
        shuffled = [records[i] for i in order.tolist()]
        self._cache[split.index] = shuffled
        return shuffled
