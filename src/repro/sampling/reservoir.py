"""Reservoir sampling baseline (Vitter's Algorithm R).

The paper's §3.3 dismisses reservoir sampling over HDFS because "the
entire dataset needs to be read, and possibly re-read when further
samples are required" — it is nevertheless the textbook way to produce
an exactly-uniform fixed-size sample in one pass, so it serves as the
correctness baseline the clever samplers are validated against.

The default implementation draws its replacement indices in batches:
NumPy's bounded-integer generation consumes the PCG64 stream
identically for an array draw with per-element bounds and for the
equivalent sequence of scalar draws, so the batched sampler selects
*exactly* the items the scalar loop (``batched=False``) selects for any
seed — only the per-item Python overhead of the draw goes away.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, TypeVar

import numpy as np

from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int

T = TypeVar("T")

#: Items per batched draw.  Any chunking yields the same stream (the
#: decomposition never depends on data), so this is purely a wall-clock
#: knob.
_CHUNK = 1024


def reservoir_sample(items: Iterable[T], k: int, *,
                     seed: SeedLike = None,
                     batched: bool = True) -> List[T]:
    """One-pass uniform sample of ``k`` items from an iterable.

    Every length-``k`` subset of the stream is equally likely.  If the
    stream has fewer than ``k`` items, all of them are returned.
    ``batched=False`` pins the draw-per-item scalar reference; results
    are byte-identical either way.
    """
    check_positive_int("k", k)
    rng = ensure_rng(seed)
    it = iter(items)
    reservoir: List[T] = list(itertools.islice(it, k))
    if len(reservoir) < k:
        return reservoir
    if not batched:
        for i, item in enumerate(it, start=k):
            j = int(rng.integers(0, i + 1))
            if j < k:
                reservoir[j] = item
        return reservoir
    i = k
    while True:
        chunk = list(itertools.islice(it, _CHUNK))
        if not chunk:
            return reservoir
        # One array draw with per-item bounds [0, i+1) ... [0, i+c):
        # the same variates the scalar loop would draw one by one.
        draws = rng.integers(0, np.arange(i + 1, i + len(chunk) + 1))
        i += len(chunk)
        hits = np.flatnonzero(draws < k)
        for pos in hits.tolist():
            reservoir[int(draws[pos])] = chunk[pos]


def reservoir_sample_indices(n: int, k: int, *, seed: SeedLike = None,
                             batched: bool = True) -> List[int]:
    """Indices a reservoir pass over ``range(n)`` would select."""
    return reservoir_sample(range(n), k, seed=seed, batched=batched)
