"""Reservoir sampling baseline (Vitter's Algorithm R).

The paper's §3.3 dismisses reservoir sampling over HDFS because "the
entire dataset needs to be read, and possibly re-read when further
samples are required" — it is nevertheless the textbook way to produce
an exactly-uniform fixed-size sample in one pass, so it serves as the
correctness baseline the clever samplers are validated against.
"""

from __future__ import annotations

from typing import Iterable, List, TypeVar

from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int

T = TypeVar("T")


def reservoir_sample(items: Iterable[T], k: int, *,
                     seed: SeedLike = None) -> List[T]:
    """One-pass uniform sample of ``k`` items from an iterable.

    Every length-``k`` subset of the stream is equally likely.  If the
    stream has fewer than ``k`` items, all of them are returned.
    """
    check_positive_int("k", k)
    rng = ensure_rng(seed)
    reservoir: List[T] = []
    for i, item in enumerate(items):
        if i < k:
            reservoir.append(item)
        else:
            j = int(rng.integers(0, i + 1))
            if j < k:
                reservoir[j] = item
    return reservoir


def reservoir_sample_indices(n: int, k: int, *, seed: SeedLike = None
                             ) -> List[int]:
    """Indices a reservoir pass over ``range(n)`` would select."""
    return reservoir_sample(range(n), k, seed=seed)
