"""The 2-file / ARHASH sampling technique (paper §7, after Olken & Rotem).

A set of blocks ``F1`` is pinned in main memory and the remainder ``F2``
stays on disk.  Each draw first chooses *which file* to sample — ``F1``
with probability ``|F1|/N`` — and then picks a uniform item within it, so
the overall draw is uniform while only a ``|F2|/N`` fraction of draws
pays a disk seek.  The paper notes the method "must be extended to
support a distributed filesystem"; our pre-map sampler is that extension,
and this class exists as the single-machine reference point (its expected
seek count is asserted in tests and compared in the ablation bench).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, TypeVar

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_fraction

T = TypeVar("T")


class TwoFileSampler:
    """Uniform sampler over a memory-resident ``F1`` and disk-resident ``F2``."""

    def __init__(self, values: Sequence[T], memory_fraction: float, *,
                 seed: SeedLike = None,
                 item_bytes: int = 64) -> None:
        check_fraction("memory_fraction", memory_fraction, inclusive_low=True)
        if len(values) == 0:
            raise ValueError("cannot sample from an empty population")
        self._rng = ensure_rng(seed)
        split = int(len(values) * memory_fraction)
        self._f1: List[T] = list(values[:split])
        self._f2: List[T] = list(values[split:])
        self._n = len(values)
        self._item_bytes = item_bytes
        self.disk_draws = 0
        self.memory_draws = 0

    @property
    def memory_probability(self) -> float:
        """Probability that a single draw is served from memory."""
        return len(self._f1) / self._n

    def draw(self, *, ledger: Optional[CostLedger] = None) -> T:
        """One uniform draw (with replacement) over the whole population."""
        # Stage 1: choose the file proportionally to its share of items;
        # stage 2: uniform within the file.  The composition is uniform.
        if int(self._rng.integers(0, self._n)) < len(self._f1):
            self.memory_draws += 1
            idx = int(self._rng.integers(0, len(self._f1)))
            return self._f1[idx]
        self.disk_draws += 1
        if ledger is not None:
            ledger.charge_seeks(1)
            ledger.charge_disk_read(self._item_bytes)
        idx = int(self._rng.integers(0, len(self._f2)))
        return self._f2[idx]

    def sample(self, k: int, *, ledger: Optional[CostLedger] = None,
               batched: bool = True) -> List[T]:
        """``k`` independent uniform draws (with replacement).

        Uses a two-pass draw order: first the ``k`` file choices (one
        batch draw with bound ``N``), then the ``k`` within-file indices
        (one batch draw with per-element bounds ``|F1|`` / ``|F2|``).
        Each pass consumes the RNG stream exactly as the equivalent
        scalar loop would, so ``batched=False`` (the same two passes,
        loop-per-draw) returns byte-identical samples, counters and
        ledger charges — the property test pins the pair together.

        Note the two-pass order *replaces* this method's historical
        implementation (``[self.draw() for _ in range(k)]``, which
        interleaved the choice and index draws): for a fixed seed,
        ``sample`` now returns a different — equally uniform — draw,
        the same licence the chunked bootstrap's executor path takes.
        Callers that need the interleaved stream use can still loop
        :meth:`draw`, which is unchanged.
        """
        if k < 0:
            raise ValueError("sample size cannot be negative")
        if k == 0:
            return []
        n1 = len(self._f1)
        if batched:
            choices = self._rng.integers(0, self._n, size=k)
            in_memory = choices < n1
            # Unselected branch bounds are never drawn from, but the
            # bound array must stay positive for the generator.
            bounds = np.where(in_memory, max(n1, 1),
                              max(len(self._f2), 1))
            indices = self._rng.integers(0, bounds).tolist()
            in_memory = in_memory.tolist()
        else:
            choices = [int(self._rng.integers(0, self._n)) for _ in range(k)]
            in_memory = [u < n1 for u in choices]
            indices = [int(self._rng.integers(
                0, n1 if mem else len(self._f2))) for mem in in_memory]
        out: List[T] = []
        for mem, idx in zip(in_memory, indices):
            if mem:
                self.memory_draws += 1
                out.append(self._f1[idx])
            else:
                self.disk_draws += 1
                if ledger is not None:
                    ledger.charge_seeks(1)
                    ledger.charge_disk_read(self._item_bytes)
                out.append(self._f2[idx])
        return out

    def expected_seeks(self, k: int) -> float:
        """Expected disk seeks for ``k`` draws: ``k × |F2|/N``."""
        return k * (1.0 - self.memory_probability)
