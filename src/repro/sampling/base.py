"""Common sampling helpers and the sampler interface notes.

Two sampler families live in this package:

* **Record sources** (:class:`~repro.sampling.premap.PreMapSampler`,
  :class:`~repro.sampling.postmap.PostMapSampler`) plug into the
  MapReduce engine as the strategy that turns input splits into record
  streams (paper §3.3).  They are stateful: EARL expands the sample
  across iterations and already-delivered records must not repeat.
* **In-memory helpers** (:func:`draw_sample`, reservoir, block sampling)
  operate on materialized sequences; the EARL core uses them for pilot
  runs and the baselines use them for comparisons.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

import numpy as np

from repro.hdfs.splits import InputSplit
from repro.util.rng import SeedLike, ensure_rng

T = TypeVar("T")


def draw_sample(values: Sequence[T], n: int, *, replace: bool = False,
                seed: SeedLike = None) -> List[T]:
    """Uniform random sample of ``n`` items from ``values``.

    Without replacement ``n`` may not exceed ``len(values)``; with
    replacement any ``n >= 0`` is valid (this is the bootstrap's resample
    primitive, although the hot path in ``repro.core.bootstrap`` uses
    vectorized index draws instead).
    """
    if n < 0:
        raise ValueError("sample size cannot be negative")
    if not replace and n > len(values):
        raise ValueError(
            f"cannot draw {n} items without replacement from {len(values)}")
    rng = ensure_rng(seed)
    idx = rng.choice(len(values), size=n, replace=replace)
    return [values[int(i)] for i in idx]


def allocate_per_split(splits: Sequence[InputSplit], total: int) -> List[int]:
    """Deterministically allocate ``total`` sampled records across splits,
    proportionally to each split's logical length (largest remainder).

    The paper distributes the sample over input splits so that every
    mapper contributes; proportional allocation keeps the combined sample
    uniform over the file.
    """
    if total < 0:
        raise ValueError("total cannot be negative")
    if not splits:
        return []
    weights = np.array([max(s.logical_length, 1) for s in splits], dtype=float)
    shares = weights / weights.sum() * total
    counts = np.floor(shares).astype(int)
    remainder = total - int(counts.sum())
    if remainder > 0:
        # Hand the leftover units to the largest fractional parts.
        frac_order = np.argsort(-(shares - counts))
        for i in range(remainder):
            counts[frac_order[i % len(splits)]] += 1
    return [int(c) for c in counts]
