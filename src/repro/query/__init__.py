"""Approximate GROUP BY queries with per-group error bounds.

The user-facing surface of the grouped-query subsystem: a declarative
:class:`Query` (``select`` / ``group_by`` / ``where``) that plans onto
the stack built by the earlier PRs — stratified sampling
(:class:`~repro.sampling.StratifiedSampler`), per-group EARL sessions
with per-group bootstrap error bounds and early stopping
(:class:`~repro.core.GroupedEarlSession`), the pluggable executor
backends, and the columnar HDFS ingest plane
(:func:`~repro.hdfs.read_keyed_column`).

Quickstart::

    from repro.query import Query, agg
    from repro.core import EarlConfig

    q = Query([agg("mean", "value")], group_by="key") \\
        .on(table, config=EarlConfig(sigma=0.05, seed=1))
    for snapshot in q.stream():        # one GroupedSnapshot per round
        ...                            # per-group estimates + CIs
    result = Query([agg("mean", "value")], group_by="key") \\
        .on(table, config=EarlConfig(sigma=0.05, seed=1)).run()

See DESIGN.md §7 ("Approximate grouped queries") for the planner →
sampler → per-group sessions → snapshots pipeline.
"""

from repro.core.grouped import (
    ALLOCATION_SCHEDULE,
    GroupEstimate,
    GroupedEarlSession,
    GroupedResult,
    GroupedSnapshot,
    Measure,
)
from repro.query.model import WHERE_OPS, Aggregate, Query, agg
from repro.query.planner import ALL_ROWS_KEY, plan_query

__all__ = [
    "Query",
    "agg",
    "Aggregate",
    "WHERE_OPS",
    "plan_query",
    "ALL_ROWS_KEY",
    "GroupedEarlSession",
    "Measure",
    "GroupEstimate",
    "GroupedSnapshot",
    "GroupedResult",
    "ALLOCATION_SCHEDULE",
]
