"""The declarative grouped-query model.

A :class:`Query` is a tiny SQL-shaped description of an approximate
aggregation::

    Query(select=[agg("mean", "value"), agg("p90", "value", sigma=0.1)],
          group_by="key",
          where=("value", ">", 0.0))

``select`` lists the aggregates (:func:`agg`), ``group_by`` names the
grouping column (omit it for a whole-table query), and ``where`` filters
rows before any sampling happens — either a ``(column, op, literal)``
triple or a callable over the column mapping returning a boolean mask.

A query is *bound* to data with :meth:`Query.on` (any mapping of column
name → array-like) or :meth:`Query.from_hdfs` (a ``key<TAB>value`` file
in the simulated HDFS, ingested through the columnar split cache); the
bound query then plans onto :class:`~repro.core.GroupedEarlSession` —
see :mod:`repro.query.planner` — and exposes the familiar progressive
surface: :meth:`Query.stream` yields
:class:`~repro.core.GroupedSnapshot` per round (consumable by
:class:`~repro.streaming.StreamConsumer` unchanged) and
:meth:`Query.run` drains it into a :class:`~repro.core.GroupedResult`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.config import EarlConfig
from repro.core.correction import CorrectionLike
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.grouped import (
    ALLOCATION_SCHEDULE,
    GroupedResult,
    GroupedSnapshot,
)

#: A ``where`` clause: ``(column, op, literal)`` or a mask callable.
WhereLike = Union[Tuple[str, str, Any],
                  Callable[[Mapping[str, np.ndarray]], np.ndarray]]

#: Comparison operators accepted in a ``where`` triple.
WHERE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Aggregate:
    """One ``select`` entry: a statistic over a column.

    ``column`` is a column name, or a pair of names for row-item
    statistics (``agg("correlation", ("x", "y"))``).  ``sigma``
    overrides the config's error bound for this aggregate only.
    """

    statistic: str
    column: Union[str, Tuple[str, str]]
    sigma: Optional[float] = None
    correction: CorrectionLike = "auto"
    name: str = ""

    def __post_init__(self) -> None:
        if self.sigma is not None and not 0.0 < self.sigma <= 1.0:
            raise ValueError(f"sigma must be in (0, 1], got {self.sigma}")
        if not self.name:
            col = (self.column if isinstance(self.column, str)
                   else ", ".join(self.column))
            object.__setattr__(self, "name", f"{self.statistic}({col})")

    @property
    def columns(self) -> Tuple[str, ...]:
        """The source columns this aggregate reads."""
        return ((self.column,) if isinstance(self.column, str)
                else tuple(self.column))


def agg(statistic: StatisticLike, column: Union[str, Sequence[str]], *,
        sigma: Optional[float] = None,
        correction: CorrectionLike = "auto",
        name: Optional[str] = None) -> Aggregate:
    """Build one ``select`` aggregate: ``agg("mean", "value")``.

    ``statistic`` is any registered statistic name (or
    :class:`~repro.core.Statistic`); row-item statistics take a pair of
    columns (``agg("correlation", ("x", "y"))``).  ``sigma`` sets this
    aggregate's own error bound; ``name`` its label in results (default
    ``"mean(value)"``-style).
    """
    stat = get_statistic(statistic)   # validates eagerly
    if not isinstance(column, str):
        column = tuple(column)
        if len(column) != 2 or not all(isinstance(c, str) for c in column):
            raise ValueError(
                "a column pair must be exactly two column names")
        if not getattr(stat, "row_items", False):
            raise ValueError(
                f"statistic {stat.name!r} consumes scalar items; a column "
                "pair requires a row-wise statistic such as 'correlation'")
    elif getattr(stat, "row_items", False):
        raise ValueError(
            f"statistic {stat.name!r} is row-wise; select it over a "
            "column pair, e.g. agg('correlation', ('x', 'y'))")
    return Aggregate(statistic=stat.name, column=column, sigma=sigma,
                     correction=correction, name=name or "")


class Query:
    """A declarative approximate GROUP BY query.

    Example
    -------
    >>> import numpy as np
    >>> from repro.query import Query, agg
    >>> from repro.core import EarlConfig
    >>> rng = np.random.default_rng(0)
    >>> table = {"key": rng.choice(["a", "b"], size=40_000, p=[0.9, 0.1]),
    ...          "value": rng.lognormal(3.0, 1.0, 40_000)}
    >>> q = Query([agg("mean", "value")], group_by="key") \\
    ...     .on(table, config=EarlConfig(sigma=0.05, seed=1))
    >>> result = q.run()
    >>> sorted(result.groups) == ["a", "b"] and result.achieved
    True

    ``allocation`` / ``round_budget`` select the stratified budget
    policy (default: every group follows its own expansion schedule);
    see :class:`~repro.core.GroupedEarlSession`.
    """

    def __init__(self, select: Sequence[Aggregate], *,
                 group_by: Optional[str] = None,
                 where: Optional[WhereLike] = None,
                 source: Optional[Mapping[str, Any]] = None,
                 config: Optional[EarlConfig] = None,
                 allocation: str = ALLOCATION_SCHEDULE,
                 round_budget: Optional[int] = None) -> None:
        if not select:
            raise ValueError("select must name at least one aggregate")
        aggregates = []
        names = set()
        for entry in select:
            if not isinstance(entry, Aggregate):
                raise TypeError(
                    f"select entries must come from agg(...), got "
                    f"{type(entry).__name__}")
            if entry.name in names:
                raise ValueError(f"duplicate aggregate name {entry.name!r}")
            names.add(entry.name)
            aggregates.append(entry)
        if where is not None and not callable(where):
            if (not isinstance(where, tuple) or len(where) != 3
                    or not isinstance(where[0], str)):
                raise ValueError(
                    "where must be a (column, op, literal) triple or a "
                    "callable over the column mapping")
            if where[1] not in WHERE_OPS:
                raise ValueError(f"unknown where operator {where[1]!r}; "
                                 f"known: {sorted(WHERE_OPS)}")
        self.select: Tuple[Aggregate, ...] = tuple(aggregates)
        self.group_by = group_by
        self.where = where
        self.source = source
        self.config = config
        self.allocation = allocation
        self.round_budget = round_budget
        #: The most recently planned session (set by :meth:`stream` /
        #: :meth:`run`) — the handle a concurrent caller needs for
        #: :meth:`~repro.core.GroupedEarlSession.cancel`.
        self.last_session: Optional[Any] = None

    # ------------------------------------------------------------- binding
    def on(self, source: Mapping[str, Any], *,
           config: Optional[EarlConfig] = None) -> "Query":
        """A copy of this query bound to ``source`` (columnar mapping:
        column name → array-like, all the same length)."""
        return Query(self.select, group_by=self.group_by, where=self.where,
                     source=source, config=config or self.config,
                     allocation=self.allocation,
                     round_budget=self.round_budget)

    def from_hdfs(self, fs, path: str, *,
                  value_column: str = "value",
                  delimiter: str = "\t",
                  config: Optional[EarlConfig] = None,
                  ledger=None,
                  split_logical_bytes: Optional[int] = None,
                  cached: bool = True) -> "Query":
        """Bind to a ``key<TAB>value`` file in the simulated HDFS.

        The file is ingested once through the columnar split cache
        (:func:`repro.hdfs.read_keyed_column`) into two columns: the
        query's ``group_by`` column (the key field; requires a grouped
        query) and ``value_column``.  Re-binding the same path replays
        the cached columns without re-parsing; the scan's simulated
        cost is charged to ``ledger`` on every call either way.
        """
        from repro.hdfs.split_cache import read_keyed_column

        if self.group_by is None:
            raise ValueError(
                "from_hdfs needs a grouped query: the file's key field "
                "binds to the group_by column")
        keys, values = read_keyed_column(
            fs, path, delimiter=delimiter, ledger=ledger,
            split_logical_bytes=split_logical_bytes, cached=cached)
        return self.on({self.group_by: keys, value_column: values},
                       config=config)

    # ------------------------------------------------------------ execution
    def plan(self):
        """Plan this bound query onto a fresh
        :class:`~repro.core.GroupedEarlSession` (one per execution —
        sessions stream once)."""
        from repro.query.planner import plan_query

        if self.source is None:
            raise RuntimeError(
                "query is unbound; bind data with .on(source) or "
                ".from_hdfs(fs, path) first")
        return plan_query(self)

    def stream(self) -> Iterator[GroupedSnapshot]:
        """Stream per-round :class:`~repro.core.GroupedSnapshot`s with
        per-group estimates, error bounds and early stopping.

        The planned session is exposed as :attr:`last_session`, so a
        caller driving this stream from one thread can cancel it from
        another (``query.last_session.cancel()``) — closing the
        generator cross-thread is not legal, the flag is.
        """
        session = self.plan()
        self.last_session = session
        return session.stream()

    def run(self) -> GroupedResult:
        """Execute to completion; returns the
        :class:`~repro.core.GroupedResult` (one
        :class:`~repro.core.EarlResult` per group and aggregate)."""
        session = self.plan()
        self.last_session = session
        return session.run()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"select=[{', '.join(a.name for a in self.select)}]"]
        if self.group_by is not None:
            parts.append(f"group_by={self.group_by!r}")
        if self.where is not None:
            parts.append("where=...")
        parts.append("bound" if self.source is not None else "unbound")
        return f"Query({', '.join(parts)})"
