"""Planning: a bound :class:`~repro.query.Query` onto the grouped engine.

The planner is deliberately small — the query model is declarative and
the heavy lifting lives in the layers below — but it is where the
SQL-ish surface meets the stack:

1. **Materialize columns** from the bound source (any mapping of column
   name → array-like; all referenced columns must exist and agree on
   length).
2. **Apply ``where``** as a vectorized row mask *before* any sampling —
   filtered rows never enter a stratum, so per-group populations (and
   the ``1/p`` corrections built on them) refer to the filtered table.
3. **Form measures**: one :class:`~repro.core.Measure` per ``select``
   aggregate (a column pair becomes stacked 2-D row items for row-wise
   statistics such as ``"correlation"``).
4. **Build the grouped session** over the ``group_by`` column (or a
   single whole-table stratum when the query is ungrouped) with the
   query's allocation policy.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.config import EarlConfig
from repro.core.grouped import GroupedEarlSession, Measure
from repro.query.model import WHERE_OPS, Query

#: Stratum key used for ungrouped (whole-table) queries.
ALL_ROWS_KEY = "all"


def materialize_columns(query: Query) -> Dict[str, np.ndarray]:
    """Pull every referenced column out of the bound source as an array.

    The ``group_by`` column keeps its values verbatim (object dtype —
    keys may be strings, ints, …); aggregate and ``where`` columns stay
    in their natural numpy dtype for vectorized filtering.
    """
    source = query.source
    assert source is not None
    referenced = set()
    for aggregate in query.select:
        referenced.update(aggregate.columns)
    if query.group_by is not None:
        referenced.add(query.group_by)
    if query.where is not None and not callable(query.where):
        referenced.add(query.where[0])
    columns: Dict[str, np.ndarray] = {}
    length = None
    for name in sorted(referenced):
        if name not in source:
            raise KeyError(
                f"column {name!r} is not in the bound source "
                f"(has: {sorted(source)})")
        column = (np.asarray(source[name], dtype=object)
                  if name == query.group_by
                  else np.asarray(source[name]))
        if column.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-D")
        if length is None:
            length = len(column)
        elif len(column) != length:
            raise ValueError(
                f"column {name!r} has {len(column)} rows; expected "
                f"{length}")
        columns[name] = column
    if length == 0:
        raise ValueError("the bound source has no rows")
    return columns


def where_mask(query: Query,
               columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Vectorized boolean row mask for the query's ``where`` clause."""
    length = len(next(iter(columns.values())))
    if query.where is None:
        return np.ones(length, dtype=bool)
    if callable(query.where):
        mask = np.asarray(query.where(dict(columns)))
    else:
        column, op, literal = query.where
        mask = np.asarray(WHERE_OPS[op](columns[column], literal))
    if mask.dtype != bool or mask.shape != (length,):
        raise ValueError(
            "where must produce one boolean per row "
            f"(got dtype {mask.dtype}, shape {mask.shape})")
    return mask


def plan_query(query: Query) -> GroupedEarlSession:
    """Plan a bound query: columns → filter → measures → grouped session."""
    columns = materialize_columns(query)
    mask = where_mask(query, columns)
    if not mask.any():
        raise ValueError("where filtered out every row")
    if not mask.all():
        columns = {name: col[mask] for name, col in columns.items()}

    if query.group_by is not None:
        keys = columns[query.group_by]
    else:
        keys = np.full(len(next(iter(columns.values()))), ALL_ROWS_KEY,
                       dtype=object)

    measures = []
    for aggregate in query.select:
        if isinstance(aggregate.column, str):
            values = columns[aggregate.column]
        else:
            x, y = aggregate.column
            values = np.column_stack((columns[x], columns[y]))
        measures.append(Measure(
            name=aggregate.name, statistic=aggregate.statistic,
            values=values, sigma=aggregate.sigma,
            correction=aggregate.correction))

    return GroupedEarlSession(
        keys, measures,
        config=query.config or EarlConfig(),
        allocation=query.allocation,
        round_budget=query.round_budget)
