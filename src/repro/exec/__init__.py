"""Pluggable parallel execution backends (the engine's scaling seam).

This package decides *where* the repro engine's independent work units
run: serially in-process (the deterministic default), on a thread pool,
or on a process pool.  Four hot paths fan out through it:

* map/reduce task waves of the simulated MapReduce engine
  (:class:`repro.mapreduce.runtime.JobClient`);
* Monte-Carlo bootstrap resampling (:func:`repro.core.bootstrap.bootstrap`
  with an ``executor=``);
* result-distribution evaluation of delta-maintained resample sets
  (:meth:`repro.core.delta.ResampleSet.estimates`);
* whole figure sweeps (:mod:`repro.evaluation.runners` ``*_sweep``
  functions and the ``python -m repro.evaluation --executor`` flag).

Usage
-----
Select a backend per EARL run through the config::

    from repro import EarlConfig, EarlSession
    cfg = EarlConfig(seed=1, executor="processes", max_workers=4)
    result = EarlSession(data, "median", config=cfg).run()

or build one directly for the lower-level APIs::

    from repro.exec import get_executor
    from repro.core.bootstrap import bootstrap
    with get_executor("processes") as ex:
        res = bootstrap(sample, "median", B=500, seed=7, executor=ex)

The ``REPRO_EXECUTOR`` environment variable overrides any configured
name (and ``REPRO_MAX_WORKERS`` the worker count), so an existing
script or benchmark can be flipped to a parallel backend without code
changes.  Results are byte-identical across all backends for any fixed
seed — see the determinism contract in :mod:`repro.exec.executor` and
DESIGN.md's "Execution backends" section.
"""

from repro.exec.executor import (
    EXECUTOR_ENV,
    EXECUTOR_PROCESSES,
    EXECUTOR_SERIAL,
    EXECUTOR_THREADS,
    MAX_WORKERS_ENV,
    BroadcastHandle,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    as_executor,
    available_executors,
    broadcast_value,
    chunk_sizes,
    get_executor,
    live_pool_executors,
    resolve_executor,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "BroadcastHandle",
    "broadcast_value",
    "get_executor",
    "resolve_executor",
    "as_executor",
    "available_executors",
    "chunk_sizes",
    "live_pool_executors",
    "EXECUTOR_SERIAL",
    "EXECUTOR_THREADS",
    "EXECUTOR_PROCESSES",
    "EXECUTOR_ENV",
    "MAX_WORKERS_ENV",
]
