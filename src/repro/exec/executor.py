"""Pluggable execution backends for the repro engine's fan-out points.

Every hot path that consists of *independent work units* — map/reduce
task waves in :mod:`repro.mapreduce.runtime`, Monte-Carlo resample
batches in :mod:`repro.core.bootstrap`, result-distribution evaluation
in :mod:`repro.core.delta`, and whole figure sweeps in
:mod:`repro.evaluation.runners` — fans out through one strategy
interface, :class:`Executor`, instead of a hard-coded ``for`` loop.

Three backends are provided:

* :class:`SerialExecutor` — in-order, in-process execution.  The
  default, and the reference behavior every other backend must
  reproduce bit-for-bit.
* :class:`ThreadExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  pool.  Shares memory with the caller; best when the work releases the
  GIL (numpy batch kernels) or waits on simulated I/O.
* :class:`ProcessExecutor` — a ``concurrent.futures.ProcessPoolExecutor``
  pool.  True CPU parallelism; work units and their results must be
  picklable, and worker-side mutations of shared objects are *lost*
  (see ``shares_memory``).

Broadcast-once data plane
-------------------------
Fan-out callers that ship one large read-only value (the sample) to
many work units wrap it in a :class:`BroadcastHandle` via
:meth:`Executor.broadcast`.  Serial and thread backends hand out a
zero-copy reference; the process backend installs the payload in each
worker once, at pool construction, so every subsequent task pickles a
short id instead of the value.  Work functions unwrap with
:func:`broadcast_value`.  Handles are only ids plus local references —
they never change *what* is computed, so the determinism contract below
is unaffected.

Determinism contract
--------------------
Backends may only change *where* a unit runs, never *what* it computes:

1. work is decomposed identically for every backend (fixed chunk sizes,
   never "number of workers" chunks);
2. every unit carries its own RNG stream, pre-spawned by the caller via
   :func:`repro.util.rng.spawn_child`;
3. :meth:`Executor.map` returns results in submission order.

Under these rules ``serial``, ``threads`` and ``processes`` produce
byte-identical results for any seeded run, which is what the
cross-backend tests in ``tests/exec/`` assert.

Selection
---------
:func:`get_executor` builds a backend by name; :func:`resolve_executor`
reads the name from an :class:`~repro.core.config.EarlConfig` (fields
``executor`` and ``max_workers``), with the ``REPRO_EXECUTOR``
environment variable overriding the config — handy for flipping a whole
benchmark run to ``processes`` without touching code::

    REPRO_EXECUTOR=processes python -m repro.evaluation fig5

Nesting caveat: process-pool workers are daemonic and cannot fork their
own pools.  Keep inner configs on ``"serial"`` (the default) when an
outer sweep already runs on ``"processes"``.
"""

from __future__ import annotations

import itertools
import os
import weakref
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.util.validation import check_positive_int


def _wave_span(backend: str, n_tasks: int):
    """Telemetry for one fan-out wave: counters + a span.

    Waves are coarse (a whole map wave, a whole resample batch), so the
    per-wave cost is negligible; when telemetry is disabled this is one
    attribute check and a shared null span.
    """
    if _METRICS.enabled:
        _METRICS.counter("repro_executor_waves_total",
                         labels={"backend": backend},
                         help="fan-out waves dispatched").inc()
        _METRICS.counter("repro_executor_tasks_total",
                         labels={"backend": backend},
                         help="work units executed in waves").inc(n_tasks)
    return _TRACER.span("executor.wave",
                        attrs={"backend": backend, "tasks": n_tasks})


#: Environment variable overriding the configured backend name.
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable overriding the configured worker count.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Canonical backend names.
EXECUTOR_SERIAL = "serial"
EXECUTOR_THREADS = "threads"
EXECUTOR_PROCESSES = "processes"


class BroadcastHandle:
    """Executor-scoped read-only shared data (the *broadcast-once* plane).

    A handle stands in for a large immutable value (typically the sample
    array) inside work-unit arguments.  On shared-memory backends
    (serial, threads) it is a zero-copy reference; on a process pool the
    value is shipped to each worker **once**, when the pool spins up,
    instead of being pickled into every task.  Work functions read the
    payload back through :attr:`value` (or :func:`broadcast_value`,
    which also accepts raw values).

    Lifetime: a handle is valid until its executor is closed.  The
    payload must not be mutated after broadcasting — workers may hold
    a copy, so mutations would desynchronize backends.
    """

    __slots__ = ("bid", "_value")

    def __init__(self, bid: str, value: Any) -> None:
        self.bid = bid
        self._value = value

    @property
    def value(self) -> Any:
        """The broadcast payload (zero-copy in this process)."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(bid={self.bid!r})"


def broadcast_value(obj: Any) -> Any:
    """``obj.value`` if ``obj`` is a :class:`BroadcastHandle`, else ``obj``.

    Lets a work function accept both broadcast and plain arguments.
    """
    return obj.value if isinstance(obj, BroadcastHandle) else obj


#: Per-process broadcast registry.  In the driver it mirrors what each
#: live :class:`ProcessExecutor` has broadcast (so in-process fallback
#: paths resolve); in a pool worker it is populated once by the worker
#: initializer from the payloads shipped at pool construction.
_BROADCASTS: Dict[str, Any] = {}

_BROADCAST_IDS = itertools.count()


def _next_broadcast_id() -> str:
    return f"bcast-{os.getpid()}-{next(_BROADCAST_IDS)}"


def _resolve_broadcast_handle(bid: str) -> "BroadcastHandle":
    """Unpickle hook of a process-pool broadcast handle: rebind to the
    payload installed in this process (see ``_process_worker_init``)."""
    try:
        return BroadcastHandle(bid, _BROADCASTS[bid])
    except KeyError:
        raise RuntimeError(
            f"broadcast {bid!r} is not installed in this process; "
            "was the handle used after its executor was closed?") from None


def _rebuild_broadcast_handle(bid: str, value: Any) -> "BroadcastHandle":
    """Unpickle hook for a handle whose payload travelled by value (a
    broadcast made after the pool already existed)."""
    return BroadcastHandle(bid, value)


class _ProcessBroadcastHandle(BroadcastHandle):
    """Handle whose payload ships to workers once, at pool construction.

    Pickles as a bare id when the executor's pool either does not exist
    yet (the payload will ride the worker initializer) or was built with
    this broadcast installed.  A broadcast made *after* the pool started
    falls back to by-value pickling — per-task cost, exactly the
    pre-broadcast behavior, but no pool teardown.
    """

    __slots__ = ("_owner",)

    def __init__(self, bid: str, value: Any,
                 owner: "ProcessExecutor") -> None:
        super().__init__(bid, value)
        self._owner = owner

    def __reduce__(self):
        if self._owner.ships_by_initializer(self.bid):
            return (_resolve_broadcast_handle, (self.bid,))
        return (_rebuild_broadcast_handle, (self.bid, self.value))


class Executor:
    """Strategy interface: run independent work units, keep their order.

    Attributes
    ----------
    name:
        Canonical backend name (``"serial"``, ``"threads"``,
        ``"processes"``).
    is_parallel:
        Whether units may run concurrently.  Callers use this to gate
        fan-out of work that is only safe sequentially.
    shares_memory:
        Whether a unit's mutations of objects shared with the caller are
        visible after :meth:`map` returns.  ``False`` for process pools:
        units there must communicate exclusively through their return
        value.
    """

    name: str = "abstract"
    is_parallel: bool = False
    shares_memory: bool = True

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item; return results in item order.

        Exceptions raised by a unit propagate to the caller (the first
        failing unit in submission order, matching serial semantics).
        """
        raise NotImplementedError

    def broadcast(self, value: Any) -> BroadcastHandle:
        """Share a read-only ``value`` with every work unit of this
        executor.

        Returns a :class:`BroadcastHandle` to embed in work-unit
        arguments instead of the value itself.  Shared-memory backends
        return a zero-copy reference; :class:`ProcessExecutor` ships the
        payload to each worker once, at pool construction (a broadcast
        made after the pool already started falls back to by-value
        pickling per task).  Call :meth:`release` when the handle is no
        longer needed — at the latest, :meth:`close` drops every
        payload.
        """
        return BroadcastHandle(_next_broadcast_id(), value)

    def release(self, handle: BroadcastHandle) -> None:
        """Drop a broadcast payload from this executor's registry.

        After release the handle must no longer be put into work units
        (in-process references already handed out stay valid).  No-op
        on shared-memory backends — the handle was only a reference.
        Callers that loop many broadcasts over one long-lived executor
        (e.g. repeated bootstraps) should release each handle when its
        fan-out returns, so payloads do not accumulate until
        :meth:`close`.
        """

    def close(self) -> None:
        """Release pool resources.  Idempotent; ``map`` after ``close``
        is undefined."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SerialExecutor(Executor):
    """In-order, in-process execution — the deterministic reference.

    ``max_workers`` is accepted (and ignored) so the three backends are
    constructor-compatible.
    """

    name = EXECUTOR_SERIAL
    is_parallel = False
    shares_memory = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        _check_workers(max_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Plain ordered loop: ``[fn(item) for item in items]``."""
        items = list(items)
        with _wave_span(self.name, len(items)):
            return [fn(item) for item in items]


#: Every pool-backed executor that has actually materialized its (lazy)
#: worker pool.  Weak references only: an executor dropped without
#: ``close()`` disappears from here once collected, so the set tracks
#: *reachable* pool owners — exactly the leak a long-lived holder of an
#: abandoned stream generator causes.
_LIVE_POOL_EXECUTORS: "weakref.WeakSet[_PoolExecutor]" = weakref.WeakSet()


def live_pool_executors() -> List["Executor"]:
    """Pool-backed executors whose worker pool is alive right now.

    An executor registers when its lazy pool is first built and drops
    out on :meth:`Executor.close` (or garbage collection).  This is the
    leak detector the resource-release regression tests and the service
    layer use: after every consumer of a ``stream()`` generator has
    finished — normally, by ``close()``, or via cancellation — this
    list must be empty.
    """
    return [ex for ex in list(_LIVE_POOL_EXECUTORS) if ex._pool is not None]


class _PoolExecutor(Executor):
    """Shared lazy-pool plumbing for the two concurrent backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        _check_workers(max_workers)
        self._max_workers = max_workers or _default_workers()
        self._pool: Optional[Any] = None

    @property
    def max_workers(self) -> int:
        """Worker count the pool is (or will be) created with."""
        return self._max_workers

    def _make_pool(self) -> Any:
        raise NotImplementedError

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            self._pool = self._make_pool()
            _LIVE_POOL_EXECUTORS.add(self)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Fan items out over the pool; gather in submission order."""
        items = list(items)
        with _wave_span(self.name, len(items)):
            if len(items) <= 1:  # nothing to overlap; skip pool dispatch
                return [fn(item) for item in items]
            return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        """Shut the pool down (waits for in-flight units)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _LIVE_POOL_EXECUTORS.discard(self)


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend: concurrent, shared-memory execution.

    Python threads interleave under the GIL, so pure-Python units gain
    little wall-clock — the win is for units that release the GIL
    (vectorized numpy work) or block.  The pool is created lazily on the
    first multi-item :meth:`map`.
    """

    name = EXECUTOR_THREADS
    is_parallel = True
    shares_memory = True

    def _make_pool(self) -> _ThreadPool:
        return _ThreadPool(max_workers=self._max_workers)


def _process_worker_init(broadcasts: Optional[Dict[str, Any]] = None) -> None:
    """Initializer for process-pool workers.

    A pool worker is daemonic and cannot fork its own pool, so any
    inherited ``REPRO_EXECUTOR``/``REPRO_MAX_WORKERS`` override must not
    apply inside the worker: nested :func:`resolve_executor` calls fall
    back to the configured (normally ``"serial"``) backend instead of
    trying to build a pool-inside-a-pool.

    ``broadcasts`` carries the executor's broadcast payloads — they are
    pickled once per worker here, at pool construction, which is what
    lets task arguments reference them by id alone.
    """
    os.environ.pop(EXECUTOR_ENV, None)
    os.environ.pop(MAX_WORKERS_ENV, None)
    if broadcasts:
        _BROADCASTS.update(broadcasts)


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend: true CPU parallelism.

    Work functions must be module-level (picklable by reference) and
    arguments/results picklable by value.  Mutations of shared objects
    happen in the worker's copy and are discarded — units communicate
    through return values only, which is why the engine requires
    ``parallel_safe`` declarations before routing tasks here.

    :meth:`broadcast` payloads made before the (lazy) pool starts are
    installed in each worker by the pool initializer, so handles inside
    task arguments pickle as short ids.  A live broadcast made after
    the pool exists never tears it down — that handle simply pickles by
    value per task (the pre-broadcast cost).  :meth:`release` of an
    initializer-shipped payload marks the pool *stale*: the next
    :meth:`map` rebuilds it without the retired payload, which both
    frees the workers' copies and lets the next broadcast ride the
    fresh pool's initializer — so a loop of broadcast/fan-out/release
    rounds (repeated bootstraps) ships each payload once per worker and
    never accumulates old ones.
    """

    name = EXECUTOR_PROCESSES
    is_parallel = True
    shares_memory = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self._broadcasts: Dict[str, Any] = {}
        self._installed: frozenset = frozenset()
        self._stale_pool = False

    def broadcast(self, value: Any) -> BroadcastHandle:
        handle = _ProcessBroadcastHandle(_next_broadcast_id(), value, self)
        self._broadcasts[handle.bid] = value
        # Driver-side registry entry: lets the <= 1-item in-process
        # fast path of ``map`` (and any local unpickling) resolve too.
        _BROADCASTS[handle.bid] = value
        return handle

    def release(self, handle: BroadcastHandle) -> None:
        self._broadcasts.pop(handle.bid, None)
        _BROADCASTS.pop(handle.bid, None)
        if handle.bid in self._installed:
            # Workers hold a now-dead copy; retire it (and re-enable
            # initializer shipping) by rebuilding the pool lazily.
            self._stale_pool = True

    def ships_by_initializer(self, bid: str) -> bool:
        """Whether ``bid`` reaches workers via the pool initializer —
        true while the pool is yet to be built or is marked stale (the
        broadcast will ride the next pool's initargs), or when the live
        pool was built with this payload installed."""
        return self._pool is None or self._stale_pool \
            or bid in self._installed

    def _make_pool(self) -> _ProcessPool:
        self._installed = frozenset(self._broadcasts)
        self._stale_pool = False
        return _ProcessPool(max_workers=self._max_workers,
                            initializer=_process_worker_init,
                            initargs=(dict(self._broadcasts),))

    def _ensure_pool(self) -> Any:
        if self._pool is not None and self._stale_pool:
            self._pool.shutdown(wait=True)
            self._pool = None
        return super()._ensure_pool()

    def close(self) -> None:
        super().close()
        for bid in self._broadcasts:
            _BROADCASTS.pop(bid, None)
        self._broadcasts.clear()
        self._installed = frozenset()
        self._stale_pool = False


#: Registry of selectable backends.
_EXECUTORS = {
    EXECUTOR_SERIAL: SerialExecutor,
    EXECUTOR_THREADS: ThreadExecutor,
    EXECUTOR_PROCESSES: ProcessExecutor,
}


def available_executors() -> List[str]:
    """Names accepted by :func:`get_executor` (and ``EarlConfig.executor``)."""
    return sorted(_EXECUTORS)


def get_executor(name: str, max_workers: Optional[int] = None) -> Executor:
    """Build the named backend (``"serial"``, ``"threads"``, ``"processes"``).

    ``max_workers`` bounds pool size for the concurrent backends
    (default: the machine's CPU count) and is ignored by ``serial``.
    """
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; known: {available_executors()}"
        ) from None
    return cls(max_workers=max_workers)


def resolve_executor(config: Optional[Any] = None, *,
                     name: Optional[str] = None,
                     max_workers: Optional[int] = None) -> Executor:
    """Build the backend a run should use, honoring the env override.

    Precedence for the backend name: ``REPRO_EXECUTOR`` environment
    variable > explicit ``name`` argument > ``config.executor`` >
    ``"serial"``.  Worker count: ``REPRO_MAX_WORKERS`` > ``max_workers``
    argument > ``config.max_workers`` > CPU count.  ``config`` is any
    object with ``executor``/``max_workers`` attributes (typically an
    :class:`~repro.core.config.EarlConfig`).

    The caller owns the returned executor and should ``close()`` it (or
    use it as a context manager).
    """
    env_name = os.environ.get(EXECUTOR_ENV)
    chosen = env_name or name or getattr(config, "executor", None) \
        or EXECUTOR_SERIAL
    env_workers = os.environ.get(MAX_WORKERS_ENV)
    if env_workers:
        try:
            workers: Optional[int] = int(env_workers)
        except ValueError:
            raise ValueError(
                f"{MAX_WORKERS_ENV} must be an integer, "
                f"got {env_workers!r}") from None
    else:
        workers = (max_workers if max_workers is not None
                   else getattr(config, "max_workers", None))
    return get_executor(chosen, max_workers=workers)


def as_executor(spec: Any) -> Tuple[Executor, bool]:
    """Normalize ``spec`` into ``(executor, owned)``.

    ``spec`` may be ``None`` (serial), a backend name, or an
    :class:`Executor` instance.  ``owned`` tells the caller whether it
    created the executor (and must therefore close it) or borrowed one
    whose lifecycle belongs to somebody else.
    """
    if spec is None:
        return SerialExecutor(), True
    if isinstance(spec, Executor):
        return spec, False
    if isinstance(spec, str):
        return get_executor(spec), True
    raise TypeError(
        f"executor must be None, a name, or an Executor; got {type(spec).__name__}")


def chunk_sizes(total: int, chunk: int) -> List[int]:
    """Deterministic decomposition of ``total`` units into fixed chunks.

    Returns ``[chunk, chunk, ..., remainder]``.  The decomposition
    depends only on ``total`` and ``chunk`` — never on worker count —
    which is what keeps chunked Monte-Carlo runs identical across
    backends and pool sizes.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    sizes = [chunk] * (total // chunk)
    if total % chunk:
        sizes.append(total % chunk)
    return sizes


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _check_workers(max_workers: Optional[int]) -> None:
    """Shared validation, same semantics as ``EarlConfig.max_workers``."""
    if max_workers is not None:
        check_positive_int("max_workers", max_workers)
