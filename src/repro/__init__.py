"""EARL — Early Accurate Results for advanced analytics on MapReduce.

A faithful reproduction of Laptev, Zeng & Zaniolo (PVLDB 5(10), 2012):
bootstrap-based early approximate answers with reliable error bounds for
arbitrary analytical functions, running either in memory
(:class:`EarlSession`) or on a fully simulated Hadoop/MapReduce substrate
(:class:`EarlJob` over :class:`repro.cluster.Cluster`).

Quickstart
----------
>>> import numpy as np
>>> from repro import EarlSession, EarlConfig
>>> data = np.random.default_rng(0).lognormal(3.0, 1.0, 500_000)
>>> result = EarlSession(data, "mean",
...                      config=EarlConfig(sigma=0.05, seed=42)).run()
>>> round(result.sample_fraction, 3) < 0.1   # tiny sample sufficed
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced figure.
"""

from repro.core import (
    AccuracyEstimate,
    BootstrapResult,
    EarlConfig,
    EarlJob,
    EarlResult,
    EarlSession,
    GroupedEarlSession,
    GroupedResult,
    GroupedSnapshot,
    ProgressSnapshot,
    bootstrap,
    jackknife,
    run_grouped_stock_job,
    run_stock_job,
)
from repro.core.estimators import available_statistics, get_statistic
from repro.query import Query, agg
from repro.streaming import SessionManager, StreamConsumer

__version__ = "1.0.0"

__all__ = [
    "EarlSession",
    "EarlJob",
    "EarlConfig",
    "EarlResult",
    "ProgressSnapshot",
    "Query",
    "agg",
    "GroupedEarlSession",
    "GroupedSnapshot",
    "GroupedResult",
    "SessionManager",
    "StreamConsumer",
    "AccuracyEstimate",
    "bootstrap",
    "BootstrapResult",
    "jackknife",
    "run_stock_job",
    "run_grouped_stock_job",
    "get_statistic",
    "available_statistics",
    "__version__",
]
