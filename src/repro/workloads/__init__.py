"""Synthetic workloads and HDFS loaders for the evaluation."""

from repro.workloads.datasets import (
    GB,
    LoadedDataset,
    load_lines,
    load_numeric,
    load_stand_in,
)
from repro.workloads.synthetic import (
    NUMERIC_FORMAT,
    ar1_series,
    categorical_dataset,
    clustered_lines,
    gaussian_mixture_points,
    keyed_lines,
    keyed_value_lines,
    numeric_dataset,
    numeric_lines,
    parse_point,
    point_lines,
    population_summary,
    skewed_keyed_values,
)

__all__ = [
    "numeric_dataset",
    "numeric_lines",
    "keyed_lines",
    "keyed_value_lines",
    "skewed_keyed_values",
    "clustered_lines",
    "categorical_dataset",
    "ar1_series",
    "gaussian_mixture_points",
    "point_lines",
    "parse_point",
    "population_summary",
    "NUMERIC_FORMAT",
    "LoadedDataset",
    "load_numeric",
    "load_lines",
    "load_stand_in",
    "GB",
]
