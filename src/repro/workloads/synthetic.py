"""Synthetic dataset generators.

The paper's evaluation uses synthetic data throughout ("the synthetic
dataset allows us to easily validate the accuracy measure produced by
EARL", §6).  Generators here cover the shapes the experiments need:

* numeric value streams from several distributions (heavy-tailed ones
  make approximation interesting — a low-variance stream needs almost no
  sample);
* keyed records for multi-reducer jobs;
* *clustered* layouts (values sorted on disk) that break block sampling;
* Bernoulli streams for the categorical appendix;
* AR(1) series for the dependent-data appendix;
* Gaussian-mixture points for the K-Means experiment.

All values are rendered as fixed-width text lines so that pre-map
sampling's offset-probing is exactly uniform over records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int

#: Fixed-width numeric line format (15 chars + newline = 16 bytes/record).
NUMERIC_FORMAT = "{:015.6f}"


def numeric_dataset(n: int, distribution: str = "lognormal", *,
                    seed: SeedLike = None, **params: float) -> np.ndarray:
    """Draw ``n`` values from a named distribution.

    Supported: ``normal(loc, scale)``, ``lognormal(mean, sigma)``,
    ``exponential(scale)``, ``uniform(low, high)``, ``pareto(alpha,
    scale)``.  Defaults give strictly positive, right-skewed data with a
    population cv around 1-2 — the regime where the paper's 1 % samples
    and 30 bootstraps arise.
    """
    check_positive_int("n", n)
    rng = ensure_rng(seed)
    if distribution == "normal":
        return rng.normal(params.get("loc", 100.0),
                          params.get("scale", 15.0), size=n)
    if distribution == "lognormal":
        return rng.lognormal(params.get("mean", 3.0),
                             params.get("sigma", 1.0), size=n)
    if distribution == "exponential":
        return rng.exponential(params.get("scale", 50.0), size=n)
    if distribution == "uniform":
        return rng.uniform(params.get("low", 0.0),
                           params.get("high", 1000.0), size=n)
    if distribution == "pareto":
        alpha = params.get("alpha", 2.5)
        scale = params.get("scale", 10.0)
        return (rng.pareto(alpha, size=n) + 1.0) * scale
    raise ValueError(f"unknown distribution {distribution!r}")


def numeric_lines(values: Sequence[float]) -> List[str]:
    """Fixed-width text lines for a numeric stream."""
    return [NUMERIC_FORMAT.format(float(v)) for v in values]


def keyed_lines(values: Sequence[float], n_keys: int, *,
                seed: SeedLike = None) -> List[str]:
    """``key<TAB>value`` lines with keys assigned uniformly at random."""
    check_positive_int("n_keys", n_keys)
    rng = ensure_rng(seed)
    keys = rng.integers(0, n_keys, size=len(values))
    return [f"k{int(k):04d}\t" + NUMERIC_FORMAT.format(float(v))
            for k, v in zip(keys, values)]


def skewed_keyed_values(n: int, n_keys: int, *, skew: float = 1.5,
                        value_sigma: float = 1.0,
                        seed: SeedLike = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Zipf-skewed keyed records: the grouped-query stress workload.

    Key ``k`` (0-based popularity rank) receives a share of the ``n``
    rows proportional to ``1 / (k + 1)^skew`` — the head key dominates
    and the tail keys are rare, which is exactly where uniform table
    sampling starves per-group estimates.  Values are lognormal with a
    per-key location so groups have genuinely different answers.

    Returns ``(keys, values)``: an object array of ``"g000"``-style key
    strings plus an aligned float column.  Every key appears at least
    once.
    """
    check_positive_int("n", n)
    check_positive_int("n_keys", n_keys)
    if n < n_keys:
        raise ValueError(f"need n >= n_keys, got n={n}, n_keys={n_keys}")
    if skew < 0:
        raise ValueError("skew cannot be negative")
    rng = ensure_rng(seed)
    shares = 1.0 / np.arange(1, n_keys + 1, dtype=float) ** skew
    counts = np.maximum(
        1, np.floor(shares / shares.sum() * n).astype(int))
    # Settle rounding slack.  Shortfall goes to the head key; excess
    # (many tail keys floored to 0 then bumped to 1) is trimmed from
    # the largest strata, never below the one-row-per-key guarantee —
    # n >= n_keys makes that always feasible.
    slack = n - int(counts.sum())
    if slack >= 0:
        counts[0] += slack
    else:
        for idx in np.argsort(-counts, kind="stable"):
            if slack == 0:
                break
            trim = min(-slack, int(counts[idx]) - 1)
            counts[idx] -= trim
            slack += trim
    ranks = np.repeat(np.arange(n_keys), counts)
    rng.shuffle(ranks)
    keys = np.array([f"g{int(r):03d}" for r in ranks], dtype=object)
    # Per-key location spreads the group means apart (~10% steps).
    values = rng.lognormal(3.0 + 0.1 * ranks, value_sigma)
    return keys, values


def keyed_value_lines(keys: Sequence[object],
                      values: Sequence[float]) -> List[str]:
    """``key<TAB>value`` lines for explicit keyed columns (the inverse
    of :func:`repro.hdfs.read_keyed_column`'s parse)."""
    if len(keys) != len(values):
        raise ValueError("keys and values must align")
    return [f"{k}\t" + NUMERIC_FORMAT.format(float(v))
            for k, v in zip(keys, values)]


def clustered_lines(values: Sequence[float]) -> List[str]:
    """Values sorted ascending — the §7 layout that biases block sampling.

    "if the data is clustered on some attribute ... the resulting
    statistic will be inaccurate when compared to that constructed from
    a uniform-random sample."
    """
    return numeric_lines(sorted(float(v) for v in values))


def categorical_dataset(n: int, p_success: float, *,
                        seed: SeedLike = None) -> np.ndarray:
    """Bernoulli 0/1 stream for the Appendix A proportion experiments."""
    check_positive_int("n", n)
    check_fraction("p_success", p_success, inclusive_high=False)
    rng = ensure_rng(seed)
    return (rng.random(n) < p_success).astype(int)


def ar1_series(n: int, phi: float = 0.8, *, scale: float = 1.0,
               loc: float = 100.0, seed: SeedLike = None) -> np.ndarray:
    """AR(1) time series: b-dependent data for the block bootstrap.

    ``x_t = loc + phi·(x_{t-1} - loc) + ε_t`` with N(0, scale) noise;
    dependence length grows with ``|phi|``.
    """
    check_positive_int("n", n)
    if not -1.0 < phi < 1.0:
        raise ValueError("phi must be in (-1, 1) for stationarity")
    rng = ensure_rng(seed)
    noise = rng.normal(0.0, scale, size=n)
    series = np.empty(n)
    series[0] = loc + noise[0]
    for t in range(1, n):
        series[t] = loc + phi * (series[t - 1] - loc) + noise[t]
    return series


def gaussian_mixture_points(n: int, centers: Sequence[Sequence[float]], *,
                            spread: float = 1.0,
                            weights: Optional[Sequence[float]] = None,
                            seed: SeedLike = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """2-D (or d-D) points around given centers, for K-Means (Fig. 7).

    Returns ``(points, labels)`` where labels index the true component —
    handy for validating that EARL's sampled K-Means lands "within 5% of
    the optimal" centroids.
    """
    check_positive_int("n", n)
    centers_arr = np.asarray(centers, dtype=float)
    if centers_arr.ndim != 2:
        raise ValueError("centers must be a 2-D array-like (k × d)")
    k = centers_arr.shape[0]
    rng = ensure_rng(seed)
    if weights is None:
        probs = np.full(k, 1.0 / k)
    else:
        probs = np.asarray(weights, dtype=float)
        if probs.shape != (k,) or not np.isclose(probs.sum(), 1.0):
            raise ValueError("weights must be k probabilities summing to 1")
    labels = rng.choice(k, size=n, p=probs)
    points = centers_arr[labels] + rng.normal(
        0.0, spread, size=(n, centers_arr.shape[1]))
    return points, labels


def point_lines(points: np.ndarray) -> List[str]:
    """Comma-separated fixed-width coordinate lines for K-Means input."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError("points must be 2-D (n × d)")
    return [",".join(f"{c:013.6f}" for c in row) for row in pts]


def parse_point(line: str) -> np.ndarray:
    """Inverse of :func:`point_lines` for one line."""
    return np.array([float(part) for part in line.split(",")])


def population_summary(values: Sequence[float]) -> Dict[str, float]:
    """Ground-truth statistics used by benchmarks to validate estimates."""
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(np.mean(arr)),
        "median": float(np.median(arr)),
        "sum": float(np.sum(arr)),
        "std": float(np.std(arr, ddof=1)),
        "cv": float(np.std(arr, ddof=1) / abs(np.mean(arr)))
        if np.mean(arr) != 0 else float("inf"),
    }
