"""Dataset loaders: put synthetic workloads into the simulated HDFS.

The central trick is :func:`load_stand_in`: the experiments sweep data
sizes up to 200 GB (Fig. 5), which cannot be materialized on a laptop.
Instead a laptop-sized record set is written with a ``logical_scale``
such that splits, disk costs and CPU costs behave like the full-size
file (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.util.rng import SeedLike
from repro.util.validation import check_positive
from repro.workloads.synthetic import (
    numeric_dataset,
    numeric_lines,
    population_summary,
)

GB = 1_000_000_000


@dataclass(frozen=True)
class LoadedDataset:
    """Handle to a dataset written into a cluster's HDFS."""

    path: str
    records: int
    actual_bytes: int
    logical_bytes: int
    truth: Dict[str, float]

    @property
    def logical_gb(self) -> float:
        return self.logical_bytes / GB


def load_numeric(cluster: Cluster, path: str, values: Sequence[float], *,
                 logical_scale: float = 1.0) -> LoadedDataset:
    """Write a numeric stream as fixed-width lines."""
    lines = numeric_lines(values)
    meta = cluster.hdfs.write_lines(path, lines, logical_scale=logical_scale)
    return LoadedDataset(path=path, records=len(lines),
                         actual_bytes=meta.size,
                         logical_bytes=meta.logical_size,
                         truth=population_summary(values))


def load_lines(cluster: Cluster, path: str, lines: Sequence[str], *,
               logical_scale: float = 1.0,
               truth: Optional[Dict[str, float]] = None) -> LoadedDataset:
    """Write pre-rendered lines (keyed, clustered, points, ...)."""
    meta = cluster.hdfs.write_lines(path, list(lines),
                                    logical_scale=logical_scale)
    return LoadedDataset(path=path, records=len(lines),
                         actual_bytes=meta.size,
                         logical_bytes=meta.logical_size,
                         truth=truth or {})


def load_stand_in(cluster: Cluster, path: str, *,
                  logical_gb: float,
                  records: int = 200_000,
                  distribution: str = "lognormal",
                  seed: SeedLike = None,
                  **dist_params: float) -> LoadedDataset:
    """Write a laptop-sized stand-in for a ``logical_gb``-sized file.

    ``records`` actual fixed-width records are stored; the file's
    ``logical_scale`` is set so its logical size equals ``logical_gb``.
    Splits, scan costs and CPU charges then match the full-size file
    while sampling and statistics operate on real data.
    """
    check_positive("logical_gb", logical_gb)
    values = numeric_dataset(records, distribution, seed=seed, **dist_params)
    lines = numeric_lines(values)
    actual_bytes = sum(len(line) + 1 for line in lines)
    scale = max(1.0, logical_gb * GB / actual_bytes)
    meta = cluster.hdfs.write_lines(path, lines, logical_scale=scale)
    return LoadedDataset(path=path, records=records,
                         actual_bytes=meta.size,
                         logical_bytes=meta.logical_size,
                         truth=population_summary(values))
