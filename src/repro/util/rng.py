"""Random-number-generator discipline.

The EARL paper's algorithms are all randomized (sampling, bootstrapping,
delta maintenance).  To keep every experiment reproducible, no module in
this library ever touches global random state: components accept a ``seed``
argument that may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`, and normalize it through
:func:`ensure_rng`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh OS entropy), an ``int``, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged so
    that callers can thread one generator through a whole experiment).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn_child(rng: np.random.Generator, streams: int = 1) -> list[np.random.Generator]:
    """Derive ``streams`` statistically independent child generators.

    Used where parallel simulated tasks (mappers, reducers) each need their
    own stream so that task scheduling order cannot change the results.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    seeds = rng.integers(0, 2**63 - 1, size=streams, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
