"""Numerically stable running statistics with *removal* support.

EARL's delta maintenance (paper §4) updates bootstrap resamples by adding
items drawn from the new delta sample and *deleting* items from the old
resample.  To re-evaluate a statistic on the updated resample without a
full recomputation, its state must support both ``add`` and ``remove``.
:class:`RunningStats` provides that for the moment statistics (mean,
variance, standard deviation) using the standard Welford/Chan update and
its algebraic inverse.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


class RunningStats:
    """Mean/variance accumulator supporting add, remove, and merge.

    The implementation keeps ``(count, mean, M2)`` where ``M2`` is the sum
    of squared deviations from the mean.  All three operations are O(1):

    * :meth:`add` — Welford's update.
    * :meth:`remove` — exact inverse of Welford's update; valid only for
      values previously added (up to floating-point error).
    * :meth:`merge` — Chan et al.'s parallel combination, which is what a
      reducer uses to combine per-mapper partial states.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "RunningStats":
        stats = cls()
        for v in values:
            stats.add(float(v))
        return stats

    # -- core updates -----------------------------------------------------
    def add(self, value: float) -> None:
        """Fold ``value`` into the accumulator (Welford's update)."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def remove(self, value: float) -> None:
        """Remove a previously added ``value`` (inverse Welford update)."""
        if self._count <= 0:
            raise ValueError("cannot remove from an empty RunningStats")
        if self._count == 1:
            self._count = 0
            self._mean = 0.0
            self._m2 = 0.0
            return
        count_new = self._count - 1
        mean_new = (self._count * self._mean - value) / count_new
        self._m2 -= (value - self._mean) * (value - mean_new)
        # Guard against tiny negative M2 from floating-point cancellation.
        if self._m2 < 0.0:
            self._m2 = 0.0
        self._count = count_new
        self._mean = mean_new

    def add_values(self, values: "np.ndarray") -> None:
        """Fold a whole batch in at once (Chan et al. merge of the
        batch's moments).  Algebraically equal to adding the values one
        by one; the reassociated arithmetic may differ from the scalar
        loop in the last floating-point digits.
        """
        values = np.asarray(values, dtype=float).ravel()
        m = values.size
        if m == 0:
            return
        batch = RunningStats()
        batch._count = int(m)
        batch._mean = float(values.mean())
        centred = values - batch._mean
        batch._m2 = float(np.dot(centred, centred))
        self.merge(batch)

    def remove_values(self, values: "np.ndarray") -> None:
        """Remove a whole batch of previously added values (inverse of
        the Chan merge, the batch analogue of :meth:`remove`)."""
        values = np.asarray(values, dtype=float).ravel()
        m = values.size
        if m == 0:
            return
        if m > self._count:
            raise ValueError(
                f"cannot remove {m} values from a RunningStats of "
                f"{self._count}")
        if m == self._count:
            self._count, self._mean, self._m2 = 0, 0.0, 0.0
            return
        mean_b = float(values.mean())
        centred = values - mean_b
        m2_b = float(np.dot(centred, centred))
        count_r = self._count - m
        mean_r = (self._count * self._mean - m * mean_b) / count_r
        delta = mean_b - mean_r
        self._m2 -= m2_b + delta * delta * count_r * m / self._count
        if self._m2 < 0.0:  # floating-point cancellation guard
            self._m2 = 0.0
        self._count = count_r
        self._mean = mean_r

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (Chan et al.)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count, self._mean, self._m2 = other._count, other._mean, other._m2
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._mean += delta * other._count / total
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._count = total

    def copy(self) -> "RunningStats":
        clone = RunningStats()
        clone._count, clone._mean, clone._m2 = self._count, self._mean, self._m2
        return clone

    # -- accessors ---------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of an empty RunningStats is undefined")
        return self._mean

    @property
    def sum(self) -> float:
        return self._mean * self._count

    def variance(self, ddof: int = 1) -> float:
        """Variance with ``ddof`` delta degrees of freedom (default sample)."""
        if self._count - ddof <= 0:
            return 0.0
        return self._m2 / (self._count - ddof)

    def std(self, ddof: int = 1) -> float:
        return math.sqrt(self.variance(ddof=ddof))

    def cv(self, ddof: int = 1) -> float:
        """Coefficient of variation ``std/|mean|`` (paper's error measure)."""
        return coefficient_of_variation(self.mean, self.std(ddof=ddof))

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "RunningStats(empty)"
        return f"RunningStats(count={self._count}, mean={self._mean:.6g}, std={self.std():.6g})"


def coefficient_of_variation(mean: float, std: float) -> float:
    """``std / |mean|``, the paper's accuracy measure (§3).

    A zero mean makes the ratio undefined; following common AQP practice we
    return ``inf`` when dispersion exists around a zero mean and ``0.0``
    for the degenerate all-zero case, so that termination checks
    (``cv <= sigma``) behave sensibly at the boundaries.
    """
    if std < 0:
        raise ValueError("standard deviation cannot be negative")
    if mean == 0.0:
        return 0.0 if std == 0.0 else math.inf
    return std / abs(mean)


def relative_half_width(mean: float, std: float, z: float = 1.96) -> float:
    """Relative half-width of a normal confidence interval.

    Alternative error measure mentioned in §3 ("our approach is independent
    of the error measure"): ``z * std / |mean|``.
    """
    return z * coefficient_of_variation(mean, std)
