"""Shared utilities: RNG discipline, running statistics, validation.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator`; :func:`ensure_rng` normalizes the two so
that experiments are reproducible end to end.
"""

from repro.util.rng import ensure_rng, spawn_child
from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    relative_half_width,
)
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

__all__ = [
    "ensure_rng",
    "spawn_child",
    "RunningStats",
    "coefficient_of_variation",
    "relative_half_width",
    "check_fraction",
    "check_positive",
    "check_positive_int",
]
