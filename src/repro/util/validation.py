"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive(name: str, value: Number) -> Number:
    """Raise ``ValueError`` unless ``value > 0``; return it otherwise."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Raise unless ``value`` is an integer > 0; return it otherwise."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_fraction(name: str, value: float, *, inclusive_low: bool = False,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in (0, 1] (bounds configurable)."""
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        lo = "[0" if inclusive_low else "(0"
        hi = "1]" if inclusive_high else "1)"
        raise ValueError(f"{name} must be in {lo}, {hi}, got {value!r}")
    return float(value)
