"""Execution engine: runs a :class:`JobConf` on a simulated cluster.

The engine actually executes the user's map and reduce functions over the
stored records (results are real), while charging simulated time for I/O,
CPU, shuffle and task start-up (durations are modelled).  Scheduling over
the cluster's slots turns per-task durations into a job makespan.

Two execution modes mirror the paper:

* **cluster mode** — tasks pay start-up costs and run in parallel waves
  over the cluster's map/reduce slots.
* **local mode** (§3.2) — "we run the user's MR job in a local mode
  without launching a separate JVM": no start-up or set-up charges, tasks
  run serially.  EARL uses this for its pilot-phase parameter estimation.

A third knob, ``warm_start``, models EARL's persistent mappers (§2.1
modification 2): when the sample is expanded, already-running tasks are
reused, so neither job set-up nor task start-up is charged again.

Real execution of a wave's tasks can fan out over an
:class:`~repro.exec.Executor` (threads or processes) when every
component of the wave declares itself ``parallel_safe`` — see
:func:`wave_parallelizable`.  Only *where* tasks run changes: each task
already owns a pre-spawned RNG stream and a private ledger, and results
are gathered in task order, so parallel backends are byte-identical to
serial execution.  The simulated :class:`CostLedger` accounting and the
slot-scheduled makespan are computed from the same per-task durations
regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CostLedger
from repro.cluster.scheduler import schedule_tasks
from repro.exec.executor import BroadcastHandle, Executor, broadcast_value
from repro.hdfs.errors import BlockUnavailableError
from repro.hdfs.filesystem import HDFS
from repro.hdfs.record_reader import LineRecordReader
from repro.hdfs.splits import InputSplit
from repro.mapreduce import counters as C
from repro.mapreduce.combiner import run_combiner
from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import JobFailedError, TaskFailedError
from repro.mapreduce.faults import FaultPolicy
from repro.mapreduce.job import (
    ON_UNAVAILABLE_FAIL,
    ON_UNAVAILABLE_SKIP,
    JobConf,
    JobResult,
)
from repro.mapreduce.partitioner import HashPartitioner
from repro.mapreduce.types import KeyValue, TaskContext, estimate_pair_bytes
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.util.rng import ensure_rng, spawn_child


class RecordSource(Protocol):
    """Strategy that turns an input split into a record stream.

    The default is a full scan; EARL's pre-map sampler substitutes a
    random-probe source.  ``scales_with_file`` tells the engine whether
    CPU/shuffle volumes should be multiplied by the file's logical scale.
    It is true for full scans *and* for samplers: in the stand-in world
    every actual record represents ``logical_scale`` records, so a
    sampled record is a proxy for a ``logical_scale``-sized slice of the
    real sample (the paper sizes samples as a fraction ``p`` of the
    data, so real sample volumes grow with the file).  Set it false only
    for sources whose records are literal, unscaled data.

    ``parallel_safe`` declares that concurrent ``read`` calls for
    different splits neither race on shared state nor need their
    mutations seen by the driver — the condition for the engine to fan
    the map wave out over a parallel :class:`~repro.exec.Executor`.
    Stateful samplers (which accumulate ``sampled_count`` across splits)
    must leave it false; the engine then runs their wave serially.
    """

    scales_with_file: bool
    parallel_safe: bool

    def read(self, fs: HDFS, split: InputSplit, ledger: CostLedger,
             rng: np.random.Generator) -> Iterator[KeyValue]:
        ...  # pragma: no cover - protocol


class FullScanSource:
    """Default record source: read every line of the split.

    ``cached=True`` (the default) scans through the filesystem's
    columnar split cache: a split's bytes are newline-indexed and
    decoded once, and every later scan of the same split — another job
    of an iterative driver, another wave on the same pool worker — is a
    list replay.  Simulated charges and records are byte-identical to
    the scalar scan (``cached=False``).
    """

    scales_with_file = True
    #: Pure function of (fs, split): safe on every backend.
    parallel_safe = True

    def __init__(self, cached: bool = True) -> None:
        self.cached = cached

    def read(self, fs: HDFS, split: InputSplit, ledger: CostLedger,
             rng: np.random.Generator) -> Iterator[KeyValue]:
        reader = LineRecordReader(fs, split, ledger=ledger,
                                  cached=self.cached)
        return iter(reader.read_records())


def wave_parallelizable(conf: JobConf, source: RecordSource,
                        executor: Optional[Executor], *,
                        reduce_side: bool) -> bool:
    """Whether a task wave may fan out over ``executor``.

    Requires a parallel backend, cluster (non-local) mode — the paper's
    local mode is *defined* as serial single-process execution (§3.2) —
    and a ``parallel_safe = True`` declaration from every user component
    involved in the wave (map side: record source, mapper, combiner;
    reduce side: reducer).  Components that don't declare themselves are
    treated as stateful and keep their wave serial, so correctness never
    depends on a user class anticipating this engine feature.
    """
    if executor is None or not executor.is_parallel or conf.local_mode:
        return False
    if reduce_side:
        return bool(getattr(conf.reducer, "parallel_safe", False))
    return (bool(getattr(source, "parallel_safe", False))
            and bool(getattr(conf.mapper, "parallel_safe", False))
            and (conf.combiner is None
                 or bool(getattr(conf.combiner, "parallel_safe", False))))


@dataclass
class _MapTaskResult:
    partitions: List[List[KeyValue]]
    partition_bytes: List[float]
    partition_records: List[float]
    duration: float
    counters: Counters
    ledger: CostLedger
    skipped: bool = False
    #: Failed attempts absorbed by the retry loop (0 without faults).
    failed_attempts: int = 0
    #: Logical bytes of the split's unread tail when the task salvaged a
    #: partial read after mid-task block loss.
    lost_logical: float = 0.0
    salvaged: bool = False


@dataclass
class _ReduceTaskResult:
    output: List[KeyValue]
    duration: float
    counters: Counters
    ledger: CostLedger
    failed_attempts: int = 0


@dataclass
class _MapTaskArgs:
    """Everything one map task needs, bundled so the task is a pure
    picklable function of its arguments (a process-pool requirement).

    ``fs`` may be the filesystem itself or a
    :class:`~repro.exec.BroadcastHandle` wrapping it: when a map wave
    fans out over a process pool, :class:`JobClient` broadcasts the fs
    once for the wave, so each worker receives it a single time (at
    pool construction) instead of unpickling the whole simulated HDFS
    per task — and the worker's copy keeps its own split cache warm
    across every task and wave it runs."""

    fs: Any  # HDFS | BroadcastHandle[HDFS]
    ledger: CostLedger
    conf: JobConf
    source: RecordSource
    split: InputSplit
    rng: np.random.Generator
    record_scale: float
    warm_start: bool
    #: Active fault policy (None when disabled — the byte-identical path).
    policy: Optional[FaultPolicy] = None
    #: Duration multiplier of the node this task was placed on.
    slow_factor: float = 1.0
    #: 0-based attempt number, bumped by the retry wrapper.
    attempt: int = 0


@dataclass
class _ReduceTaskArgs:
    """Argument bundle of one reduce task (see :class:`_MapTaskArgs`)."""

    ledger: CostLedger
    conf: JobConf
    partition: int
    pairs: List[KeyValue]
    in_bytes: float
    in_records: float
    rng: np.random.Generator
    record_scale: float
    warm_start: bool
    policy: Optional[FaultPolicy] = None
    slow_factor: float = 1.0
    attempt: int = 0


class JobClient:
    """Submits jobs to a simulated cluster (the ``JobClient.runJob`` of
    the paper's Figure 4).

    Parameters
    ----------
    cluster:
        The simulated cluster jobs run against.
    executor:
        Optional :class:`~repro.exec.Executor` that parallel-safe task
        waves fan out over (see :func:`wave_parallelizable`).  ``None``
        keeps the engine fully serial.  The caller owns the executor's
        lifecycle; the client never closes it.
    """

    def __init__(self, cluster: Cluster,
                 executor: Optional[Executor] = None) -> None:
        self.cluster = cluster
        self.executor = executor
        #: Nodes removed from scheduling after repeated task failures
        #: (populated only when a job's FaultPolicy enables blacklisting;
        #: persists across the runs of an iterative driver).
        self.blacklisted_nodes: set = set()
        self._node_failures: Dict[str, int] = {}
        #: Cached fs broadcast for the non-shared-memory backends,
        #: keyed by fs identity + mutation count — reused across waves
        #: and runs so a process pool ships (and forks around) the
        #: filesystem once, not once per wave.
        self._fs_broadcast: Optional[BroadcastHandle] = None
        self._fs_broadcast_key: Optional[tuple] = None

    def _broadcast_fs(self, fs: HDFS) -> BroadcastHandle:
        """The executor-resident copy of ``fs`` for parallel map waves.

        Broadcast once and reused while the filesystem is unchanged;
        any namespace/availability mutation (``fs.mutation_count``)
        retires the stale copy and ships a fresh one, so workers never
        read outdated state.  The handle lives until the executor is
        closed (one payload per client — nothing accumulates), which is
        what lets pool workers keep their split caches warm across
        waves and across the runs of an iterative driver.
        """
        version = getattr(fs, "mutation_count", None)
        # id(fs) is stable while the cached entry lives: the broadcast
        # handle itself keeps the old fs referenced, so its id cannot
        # be recycled before the entry is replaced.
        key = (id(fs), version)
        if self._fs_broadcast is None \
                or self._fs_broadcast_key != key \
                or version is None:
            if self._fs_broadcast is not None:
                self.executor.release(self._fs_broadcast)
            self._fs_broadcast = self.executor.broadcast(fs)
            self._fs_broadcast_key = key
        return self._fs_broadcast

    # ------------------------------------------------------------- placement
    def _placement_nodes(self) -> List[str]:
        """Node ids eligible for task placement: healthy and not
        blacklisted (falling back to all healthy nodes if the blacklist
        would otherwise empty the cluster)."""
        nodes = [n.node_id for n in self.cluster.healthy_nodes
                 if n.node_id not in self.blacklisted_nodes]
        if not nodes:
            nodes = [n.node_id for n in self.cluster.healthy_nodes]
        return nodes

    def _slots_excluding(self, blacklist: set, *, reduce_side: bool) -> int:
        """Slot count over healthy, non-blacklisted nodes (all healthy
        nodes if the blacklist would leave no slots)."""
        nodes = [n for n in self.cluster.healthy_nodes
                 if n.node_id not in blacklist]
        if not nodes:
            nodes = self.cluster.healthy_nodes
        if reduce_side:
            return sum(n.reduce_slots for n in nodes)
        return sum(n.map_slots for n in nodes)

    def _update_blacklist(self, nodes: List[Optional[str]], results,
                          policy: FaultPolicy,
                          job_counters: Counters) -> None:
        """Attribute a wave's failed attempts to the nodes the tasks ran
        on and blacklist repeat offenders."""
        for node_id, result in zip(nodes, results):
            if node_id is None or not result.failed_attempts:
                continue
            count = self._node_failures.get(node_id, 0) \
                + result.failed_attempts
            self._node_failures[node_id] = count
            if count >= policy.blacklist_after \
                    and node_id not in self.blacklisted_nodes:
                self.blacklisted_nodes.add(node_id)
                job_counters.increment(C.BLACKLISTED_NODES)

    # ------------------------------------------------------------------ run
    def run(self, conf: JobConf, *,
            record_source: Optional[RecordSource] = None,
            splits: Optional[List[InputSplit]] = None,
            warm_start: bool = False) -> JobResult:
        """Execute ``conf`` and return its :class:`JobResult`.

        Parameters
        ----------
        record_source:
            Override how splits become records (EARL's pre-map sampling).
        splits:
            Explicit split list (EARL feeds subsets when expanding the
            sample incrementally); default: all splits of the input.
        warm_start:
            Reuse already-running tasks — skip job set-up and task
            start-up charges (EARL's persistent-mapper modification).
        """
        fs = self.cluster.hdfs
        job_id = conf.new_job_id()
        source = record_source or FullScanSource()
        if splits is None:
            splits = fs.get_splits(conf.input_path, conf.split_logical_bytes)

        driver = self.cluster.new_ledger()
        if conf.output_path is not None and fs.exists(conf.output_path):
            raise JobFailedError(
                f"output path {conf.output_path} already exists "
                "(Hadoop semantics: refusing to overwrite)")
        if not conf.local_mode and not warm_start:
            driver.charge_job_setup()

        rng = ensure_rng(conf.seed)
        n_tasks = max(1, len(splits))
        task_rngs = spawn_child(rng, n_tasks + conf.n_reducers)

        meta_scale = 1.0
        if fs.exists(conf.input_path):
            meta = fs.namenode.get(conf.input_path)
            if meta.size:
                meta_scale = meta.logical_scale
        record_scale = meta_scale if source.scales_with_file else 1.0

        # ----------------------------------------------------------- map
        skipped_logical = 0.0
        total_logical = sum(s.logical_length for s in splits) or 1
        map_parallel = wave_parallelizable(conf, source, self.executor,
                                           reduce_side=False)
        # Fault mode: an enabled FaultPolicy and/or chaos-injected slow
        # nodes switch the waves to the attempt wrapper and give every
        # task a deterministic round-robin node placement.  With neither
        # active the wrapper is bypassed entirely — the byte-identical
        # legacy path.
        policy = conf.fault_policy
        if policy is not None and not policy.enabled:
            policy = None
        slow_factors: Dict[str, float] = \
            getattr(self.cluster, "slow_factors", {})
        fault_mode = policy is not None or bool(slow_factors)
        place_tasks = fault_mode and not conf.local_mode
        map_blacklist = set(self.blacklisted_nodes)
        map_eligible = self._placement_nodes() if place_tasks else []
        map_nodes: List[Optional[str]] = [
            map_eligible[i % len(map_eligible)] if map_eligible else None
            for i in range(len(splits))]
        # Broadcast-once data plane for the wave's one large shared
        # input: on a process pool the whole simulated HDFS ships to
        # each worker a single time (at pool construction) instead of
        # being pickled into every map task, and the worker-resident
        # copy keeps its split cache warm across tasks, waves and runs
        # (the handle is cached on the client while the fs is
        # unchanged).  Shared-memory backends resolve it to a zero-copy
        # reference.
        fs_arg: Any = fs
        if map_parallel and not self.executor.shares_memory:
            fs_arg = self._broadcast_fs(fs)
        map_args = [
            _MapTaskArgs(fs=fs_arg, ledger=self.cluster.new_ledger(),
                         conf=conf, source=source, split=split,
                         rng=task_rngs[i], record_scale=record_scale,
                         warm_start=warm_start, policy=policy,
                         slow_factor=slow_factors.get(map_nodes[i], 1.0)
                         if map_nodes[i] is not None else 1.0)
            for i, split in enumerate(splits)]
        map_task_fn = _run_map_task_attempts if fault_mode \
            else _execute_map_task
        with _TRACER.span("mapreduce.map_wave",
                          attrs={"job_id": job_id,
                                 "tasks": len(map_args)}):
            if map_parallel:
                map_results = self.executor.map(map_task_fn, map_args)
            else:
                map_results = [map_task_fn(args) for args in map_args]
        for split, result in zip(splits, map_results):
            if result.skipped:
                skipped_logical += split.logical_length
            elif result.lost_logical:
                skipped_logical += result.lost_logical

        job_counters = Counters()
        for r in map_results:
            job_counters.merge(r.counters)
        if policy is not None and policy.blacklist_after > 0:
            self._update_blacklist(map_nodes, map_results, policy,
                                   job_counters)

        # -------------------------------------------------------- shuffle
        # Assembled partition-major: each reducer's input is one run of
        # ``extend`` calls over the map outputs (same pair order as the
        # map-major nested loop — map results are visited in task order
        # within every partition — without re-touching all ``n_red``
        # partition lists once per map task).
        n_red = conf.n_reducers
        shuffle: List[List[KeyValue]] = []
        shuffle_bytes: List[float] = []
        shuffle_records: List[float] = []
        for p in range(n_red):
            bucket: List[KeyValue] = []
            for r in map_results:
                bucket.extend(r.partitions[p])
            shuffle.append(bucket)
            shuffle_bytes.append(
                sum(r.partition_bytes[p] for r in map_results))
            shuffle_records.append(
                sum(r.partition_records[p] for r in map_results))

        # --------------------------------------------------------- reduce
        red_eligible = self._placement_nodes() if place_tasks else []
        red_nodes: List[Optional[str]] = [
            red_eligible[(n_tasks + p) % len(red_eligible)]
            if red_eligible else None
            for p in range(n_red)]
        reduce_args = [
            _ReduceTaskArgs(ledger=self.cluster.new_ledger(), conf=conf,
                            partition=p, pairs=shuffle[p],
                            in_bytes=shuffle_bytes[p],
                            in_records=shuffle_records[p],
                            rng=task_rngs[n_tasks + p],
                            record_scale=record_scale,
                            warm_start=warm_start, policy=policy,
                            slow_factor=slow_factors.get(red_nodes[p], 1.0)
                            if red_nodes[p] is not None else 1.0)
            for p in range(n_red)]
        reduce_task_fn = _run_reduce_task_attempts if fault_mode \
            else _execute_reduce_task
        with _TRACER.span("mapreduce.reduce_wave",
                          attrs={"job_id": job_id, "tasks": n_red}):
            if wave_parallelizable(conf, source, self.executor,
                                   reduce_side=True):
                reduce_results = self.executor.map(reduce_task_fn,
                                                   reduce_args)
            else:
                reduce_results = [reduce_task_fn(args)
                                  for args in reduce_args]
        for out in reduce_results:
            job_counters.merge(out.counters)
        if policy is not None and policy.blacklist_after > 0:
            self._update_blacklist(red_nodes, reduce_results, policy,
                                   job_counters)

        # ------------------------------------------------------- makespan
        map_durations = [r.duration for r in map_results]
        red_durations = [r.duration for r in reduce_results]
        spec_ledger: Optional[CostLedger] = None
        if policy is not None and policy.speculative and not conf.local_mode:
            spec_ledger = self.cluster.new_ledger()
            map_durations, n_spec_map = _speculate(map_durations, policy,
                                                   spec_ledger)
            red_durations, n_spec_red = _speculate(red_durations, policy,
                                                   spec_ledger)
            if n_spec_map or n_spec_red:
                job_counters.increment(C.SPECULATIVE_TASKS,
                                       n_spec_map + n_spec_red)
        if conf.local_mode:
            simulated = driver.total_seconds + sum(map_durations) + sum(red_durations)
        else:
            if fault_mode:
                # Blacklisted machines stop contributing slots: the map
                # wave ran against the blacklist as of submission, the
                # reduce wave also excludes nodes blacklisted during it.
                map_slots = max(1, self._slots_excluding(
                    map_blacklist, reduce_side=False))
                red_slots = max(1, self._slots_excluding(
                    self.blacklisted_nodes, reduce_side=True))
            else:
                map_slots = max(1, self.cluster.total_map_slots)
                red_slots = max(1, self.cluster.total_reduce_slots)
            map_span = schedule_tasks(map_durations, map_slots).makespan
            red_span = schedule_tasks(red_durations, red_slots).makespan
            simulated = driver.total_seconds + map_span + red_span

        breakdown = driver.breakdown()
        for r in map_results:
            for cat, secs in r.ledger.breakdown().items():
                breakdown[cat] = breakdown.get(cat, 0.0) + secs
        for out in reduce_results:
            for cat, secs in out.ledger.breakdown().items():
                breakdown[cat] = breakdown.get(cat, 0.0) + secs
        if spec_ledger is not None:
            # Speculative copies burn cluster resources (accounted in
            # the breakdown) but run on spare slots, so they shorten the
            # makespan rather than extending the driver's critical path.
            for cat, secs in spec_ledger.breakdown().items():
                breakdown[cat] = breakdown.get(cat, 0.0) + secs

        output: List[KeyValue] = []
        for out in reduce_results:
            output.extend(out.output)

        if conf.output_path is not None:
            lines = [f"{key}\t{value}" for key, value in output]
            fs.write_lines(conf.output_path, lines, ledger=driver)

        if _METRICS.enabled:
            # One publish per finished job: the per-category simulated
            # cost (the exact JobResult breakdown, so registry totals
            # reconcile with CostLedger sums) plus the Hadoop counters.
            from repro.cluster.costmodel import publish_cost_breakdown
            publish_cost_breakdown(breakdown)
            job_counters.publish()
            _METRICS.counter("repro_mr_jobs_total",
                             help="MapReduce jobs completed").inc()
            _METRICS.counter("repro_mr_tasks_total",
                             labels={"wave": "map"},
                             help="tasks run, by wave").inc(len(splits))
            _METRICS.counter("repro_mr_tasks_total",
                             labels={"wave": "reduce"}).inc(n_red)

        return JobResult(
            job_id=job_id,
            output=output,
            counters=job_counters,
            simulated_seconds=simulated,
            map_tasks=len(splits),
            reduce_tasks=n_red,
            skipped_splits=job_counters.get(C.SKIPPED_SPLITS),
            input_fraction=1.0 - skipped_logical / total_logical,
            breakdown=breakdown,
            driver_ledger=driver,
        )

# --------------------------------------------------------------- map tasks
def _execute_map_task(args: _MapTaskArgs) -> _MapTaskResult:
    """Run one map task.

    Module-level (not a :class:`JobClient` method) so a process-pool
    backend can pickle it by reference; everything it touches arrives in
    ``args`` and everything it produces leaves in the result — there is
    no hidden driver state, which is what makes the fan-out safe.
    """
    fs = broadcast_value(args.fs)
    conf = args.conf
    split = args.split
    ledger = args.ledger
    record_scale = args.record_scale
    counters = Counters()
    if not conf.local_mode and not args.warm_start:
        ledger.charge_task_startup()

    n_red = conf.n_reducers
    partitions: List[List[KeyValue]] = [[] for _ in range(n_red)]
    if not fs.split_available(split):
        if conf.on_unavailable == ON_UNAVAILABLE_FAIL:
            raise JobFailedError(
                f"split {split.index} of {split.path} is unavailable "
                "(all replicas lost)")
        counters.increment(C.SKIPPED_SPLITS)
        counters.increment(C.FAILED_TASKS)
        return _MapTaskResult(partitions=partitions,
                              partition_bytes=[0.0] * n_red,
                              partition_records=[0.0] * n_red,
                              duration=ledger.total_seconds,
                              counters=counters, ledger=ledger,
                              skipped=True)

    ctx = TaskContext(ledger=ledger, counters=counters, rng=args.rng,
                      record_scale=record_scale,
                      cpu_factor=conf.cpu_factor, config=dict(conf.params),
                      task_id=f"map-{split.index}", attempt=args.attempt)
    partitioner = HashPartitioner(n_red)
    mapper = conf.mapper
    buffered: List[KeyValue] = []

    # Salvage bookkeeping is only tracked when the policy could use it,
    # keeping the default hot loop untouched.
    track_salvage = (args.policy is not None
                     and args.policy.salvage_partial_splits
                     and conf.on_unavailable == ON_UNAVAILABLE_SKIP)
    last_offset: Optional[int] = None
    salvaged = False
    lost_logical = 0.0
    try:
        mapper.setup(ctx)
        if track_salvage:
            for key, value in args.source.read(fs, split, ledger, args.rng):
                if isinstance(key, (int, np.integer)):
                    last_offset = int(key)
                counters.increment(C.MAP_INPUT_RECORDS)
                ledger.charge_cpu_records(record_scale, conf.cpu_factor)
                for pair in mapper.map(key, value, ctx):
                    buffered.append(pair)
        else:
            for key, value in args.source.read(fs, split, ledger, args.rng):
                counters.increment(C.MAP_INPUT_RECORDS)
                ledger.charge_cpu_records(record_scale, conf.cpu_factor)
                for pair in mapper.map(key, value, ctx):
                    buffered.append(pair)
        for pair in mapper.cleanup(ctx):
            buffered.append(pair)
    except BlockUnavailableError as exc:
        # The availability pre-check covers the split's own blocks,
        # but a record reader legitimately over-reads past the split
        # end (to finish its last line) and can hit a lost block
        # mid-task.  With retries left, hand the read back to the
        # attempt wrapper (which refreshes the split cache and retries
        # against surviving replicas); otherwise apply the job's
        # unavailability policy — optionally salvaging the records the
        # task already produced.
        if args.policy is not None \
                and args.attempt < args.policy.max_task_retries:
            raise
        if not track_salvage:
            if conf.on_unavailable == ON_UNAVAILABLE_FAIL:
                raise JobFailedError(
                    f"map task {split.index} of {split.path} lost its "
                    f"input mid-read: {exc}") from exc
            counters.increment(C.SKIPPED_SPLITS)
            counters.increment(C.FAILED_TASKS)
            return _MapTaskResult(partitions=[[] for _ in range(n_red)],
                                  partition_bytes=[0.0] * n_red,
                                  partition_records=[0.0] * n_red,
                                  duration=ledger.total_seconds,
                                  counters=counters, ledger=ledger,
                                  skipped=True)
        # Degrade, don't die: keep the prefix read before the loss and
        # account the unread tail of the split as lost input.
        salvaged = True
        if last_offset is None and counters.get(C.MAP_INPUT_RECORDS) == 0 \
                and isinstance(args.source, FullScanSource):
            # The scalar scan reads its whole range up front, so a lost
            # tail block voided the entire read.  Re-scan just the
            # surviving prefix — served by intact replicas — and push
            # it through the mapper.
            reader = LineRecordReader(fs, split, ledger=ledger,
                                      cached=False)
            try:
                for key, value in reader.read_records_salvage():
                    last_offset = int(key)
                    counters.increment(C.MAP_INPUT_RECORDS)
                    ledger.charge_cpu_records(record_scale,
                                              conf.cpu_factor)
                    for pair in mapper.map(key, value, ctx):
                        buffered.append(pair)
            except BlockUnavailableError:
                pass  # availability changed underfoot; keep what we have
        consumed = 0.0
        if last_offset is not None and split.length > 0:
            consumed = min(1.0, max(
                0.0, (last_offset - split.start) / split.length))
        lost_logical = (1.0 - consumed) * split.logical_length
        counters.increment(C.SALVAGED_SPLITS)
        for pair in mapper.cleanup(ctx):
            buffered.append(pair)
    counters.increment(C.MAP_OUTPUT_RECORDS, len(buffered))

    if conf.combiner is not None and buffered:
        ledger.charge_cpu_records(len(buffered) * record_scale,
                                  conf.cpu_factor)
        buffered = run_combiner(conf.combiner, buffered, ctx)
        # Combined output is O(#keys): it no longer scales with the file.
        pair_scale = 1.0
    else:
        pair_scale = record_scale

    partition_bytes = [0.0] * n_red
    partition_records = [0.0] * n_red
    for key, value in buffered:
        p = partitioner.partition(key)
        partitions[p].append((key, value))
        partition_bytes[p] += estimate_pair_bytes(key, value) * pair_scale
        partition_records[p] += pair_scale

    return _MapTaskResult(partitions=partitions,
                          partition_bytes=partition_bytes,
                          partition_records=partition_records,
                          duration=ledger.total_seconds,
                          counters=counters, ledger=ledger,
                          lost_logical=lost_logical, salvaged=salvaged)


def _run_map_task_attempts(args: _MapTaskArgs) -> _MapTaskResult:
    """Fault-mode wrapper of :func:`_execute_map_task`: deterministic
    retry with capped backoff, replica-refreshing read retries, and
    slow-node duration scaling.

    Only installed when a :class:`FaultPolicy` is enabled or a chaos
    schedule slowed a node; with zero faults firing, the attempt-0 pass
    through :func:`_execute_map_task` is byte-identical to the direct
    call.
    """
    policy = args.policy
    retries = policy.max_task_retries if policy is not None else 0
    if retries == 0:
        result = _execute_map_task(args)
    else:
        base_state = args.rng.bit_generator.state
        wasted = args.ledger.spawn()
        failures = 0
        while True:
            try:
                result = _execute_map_task(args)
                break
            except (TaskFailedError, BlockUnavailableError) as exc:
                failures += 1
                wasted.merge(args.ledger)
                if failures > retries:
                    raise JobFailedError(
                        f"map task {args.split.index} of "
                        f"{args.split.path} failed after {failures} "
                        f"attempts: {exc}") from exc
                # Deterministic recovery: charge the capped backoff
                # wait, replay the task's private RNG stream from its
                # saved state, and charge the fresh attempt to a clean
                # ledger (the wasted one is folded in at completion).
                wasted.charge_backoff(policy.backoff(failures - 1))
                args.rng.bit_generator.state = base_state
                args.ledger = args.ledger.spawn()
                args.attempt = failures
                if isinstance(exc, BlockUnavailableError):
                    # Stale cached indexes may reference lost replicas;
                    # rebuild them from current availability so the
                    # retry reads from surviving copies.
                    cache = getattr(broadcast_value(args.fs),
                                    "split_cache", None)
                    if cache is not None:
                        cache.invalidate(args.split.path)
        if failures:
            result.ledger.merge(wasted)
            result.duration = result.ledger.total_seconds
            result.counters.increment(C.TASK_RETRIES, failures)
            result.counters.increment(C.FAILED_TASKS, failures)
            result.failed_attempts = failures
    if args.slow_factor > 1.0:
        result.ledger.charge_cpu_seconds(
            result.ledger.total_seconds * (args.slow_factor - 1.0))
        result.duration = result.ledger.total_seconds
    return result


def _speculate(durations: List[float], policy: FaultPolicy,
               ledger: CostLedger) -> Tuple[List[float], int]:
    """Speculative execution over one wave's task durations.

    Stragglers (duration above ``speculative_slowdown`` × the wave
    median) get a charged duplicate attempt costing one task start-up
    plus the median duration; the task finishes at whichever attempt is
    earlier.  Deterministic — a pure function of the duration list.
    """
    if len(durations) < 2:
        return durations, 0
    median = float(np.median(durations))
    if median <= 0.0:
        return durations, 0
    threshold = policy.speculative_slowdown * median
    copy_cost = ledger.params.task_startup_seconds + median
    out: List[float] = []
    launched = 0
    for duration in durations:
        if duration > threshold and copy_cost < duration:
            ledger.charge_task_startup()
            ledger.charge_cpu_seconds(median)
            out.append(copy_cost)
            launched += 1
        else:
            out.append(duration)
    return out, launched


# ------------------------------------------------------------ reduce tasks
def _group_sort_key(group: Tuple[Hashable, List[Any]]) -> str:
    """Sort key for reduce groups: the repr of the intermediate key
    (module-level so reduce tasks stay picklable by reference)."""
    return repr(group[0])


def _execute_reduce_task(args: _ReduceTaskArgs) -> _ReduceTaskResult:
    """Run one reduce task (module-level for the same reason as
    :func:`_execute_map_task`)."""
    conf = args.conf
    ledger = args.ledger
    counters = Counters()
    if not conf.local_mode and not args.warm_start:
        ledger.charge_task_startup()
    ledger.charge_network(args.in_bytes)
    ledger.charge_cpu_records(args.in_records, conf.cpu_factor)

    ctx = TaskContext(ledger=ledger, counters=counters, rng=args.rng,
                      record_scale=args.record_scale,
                      cpu_factor=conf.cpu_factor,
                      config=dict(conf.params),
                      task_id=f"reduce-{args.partition}",
                      attempt=args.attempt)

    # Group by key, then process groups in deterministic sorted order
    # (Hadoop sorts intermediate keys before reducing).  The key order
    # is materialized once per reduce task, up front, so the reduce
    # loop is a plain walk over pre-sorted (key, values) groups.
    groups: Dict[Hashable, List[Any]] = {}
    for key, value in args.pairs:
        groups.setdefault(key, []).append(value)
    counters.increment(C.REDUCE_INPUT_GROUPS, len(groups))
    counters.increment(C.REDUCE_INPUT_RECORDS, len(args.pairs))
    ordered_groups = sorted(groups.items(), key=_group_sort_key)

    reducer = conf.reducer
    output: List[KeyValue] = []
    reducer.setup(ctx)
    for key, values in ordered_groups:
        for out in reducer.reduce(key, values, ctx):
            output.append(out)
    for out in reducer.cleanup(ctx):
        output.append(out)
    counters.increment(C.REDUCE_OUTPUT_RECORDS, len(output))
    return _ReduceTaskResult(output=output, duration=ledger.total_seconds,
                             counters=counters, ledger=ledger)


def _run_reduce_task_attempts(args: _ReduceTaskArgs) -> _ReduceTaskResult:
    """Fault-mode wrapper of :func:`_execute_reduce_task` (see
    :func:`_run_map_task_attempts`; reduce tasks have no block reads, so
    only :class:`TaskFailedError` is retryable)."""
    policy = args.policy
    retries = policy.max_task_retries if policy is not None else 0
    if retries == 0:
        result = _execute_reduce_task(args)
    else:
        base_state = args.rng.bit_generator.state
        wasted = args.ledger.spawn()
        failures = 0
        while True:
            try:
                result = _execute_reduce_task(args)
                break
            except TaskFailedError as exc:
                failures += 1
                wasted.merge(args.ledger)
                if failures > retries:
                    raise JobFailedError(
                        f"reduce task {args.partition} failed after "
                        f"{failures} attempts: {exc}") from exc
                wasted.charge_backoff(policy.backoff(failures - 1))
                args.rng.bit_generator.state = base_state
                args.ledger = args.ledger.spawn()
                args.attempt = failures
        if failures:
            result.ledger.merge(wasted)
            result.duration = result.ledger.total_seconds
            result.counters.increment(C.TASK_RETRIES, failures)
            result.counters.increment(C.FAILED_TASKS, failures)
            result.failed_attempts = failures
    if args.slow_factor > 1.0:
        result.ledger.charge_cpu_seconds(
            result.ledger.total_seconds * (args.slow_factor - 1.0))
        result.duration = result.ledger.total_seconds
    return result
