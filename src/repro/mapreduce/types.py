"""Core types shared across the MapReduce engine.

The MR model (paper §2.1)::

    map:    (k1, v1)        -> list((k2, v2))
    reduce: (k2, list(v2))  -> (k3, v3)

Keys and values are arbitrary Python objects; keys must be hashable so
the shuffle can group them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.mapreduce.counters import Counters

#: A single intermediate record.
KeyValue = Tuple[Hashable, Any]


@dataclass
class TaskContext:
    """Per-task execution context handed to map/reduce functions.

    Attributes
    ----------
    ledger:
        Simulated-time account for this task; user functions may charge
        extra CPU for heavy computation.
    counters:
        Task-local counters (merged into the job at completion).
    rng:
        Task-private random generator (derived deterministically from the
        job seed and task index so scheduling cannot perturb results).
    record_scale:
        Logical-records-per-actual-record factor of the input file; the
        engine charges CPU as ``records × record_scale``.
    cpu_factor:
        Per-job multiplier of the baseline per-record CPU cost.
    config:
        Read-only job-level parameters (e.g. the sample percentage ``p``
        that ``correct()`` needs).
    attempt:
        0-based attempt number of this task execution; stays 0 unless a
        :class:`~repro.mapreduce.faults.FaultPolicy` retries the task.
    """

    ledger: CostLedger
    counters: Counters
    rng: np.random.Generator
    record_scale: float = 1.0
    cpu_factor: float = 1.0
    config: Dict[str, Any] = field(default_factory=dict)
    task_id: Optional[str] = None
    attempt: int = 0


def estimate_pair_bytes(key: Any, value: Any) -> int:
    """Rough serialized size of a ``(key, value)`` pair.

    Used to price shuffle traffic.  The estimate intentionally stays
    simple (textual length), since only relative magnitudes matter to the
    cost model.
    """
    return _estimate(key) + _estimate(value) + 2  # +2 for framing


def _estimate(obj: Any) -> int:
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, (float, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_estimate(x) for x in obj) + 2
    if isinstance(obj, dict):
        return sum(_estimate(k) + _estimate(v) for k, v in obj.items()) + 2
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    return 16
