"""Mapper↔reducer feedback channel and pipelined-iteration support.

EARL modifies Hadoop in three ways (§2.1): reducers may process input
before mappers finish, mappers stay alive until explicitly terminated,
and a communication layer lets mappers check the termination condition.
The communication layer is file-based (§3.3): *"every reducer writes its
computed error together with a time-stamp onto HDFS.  These files are
then read by the mappers to compute the overall average error"* — both
sides share the JobID, so listing the per-job error files is trivial.

:class:`FeedbackChannel` reproduces that protocol over the simulated
HDFS; the EARL driver (``repro.core.earl``) combines it with the
engine's ``warm_start`` flag, which models persistent mapper reuse.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hdfs.errors import FileNotFoundInHdfs
from repro.hdfs.filesystem import HDFS


class FeedbackChannel:
    """File-based error/termination protocol between reducers and mappers."""

    def __init__(self, fs: HDFS, job_id: str) -> None:
        self._fs = fs
        self._base = f"/earl/{job_id}"
        self._errors_dir = f"{self._base}/errors"
        self._stop_path = f"{self._base}/STOP"

    @property
    def errors_dir(self) -> str:
        return self._errors_dir

    # ----------------------------------------------------------- reducer side
    def publish_error(self, reducer_id: int, timestamp: float,
                      error: float) -> None:
        """Record reducer ``reducer_id``'s current error estimate.

        Overwrites the reducer's previous file — only the newest estimate
        matters to the expansion decision.
        """
        if error < 0:
            raise ValueError("error cannot be negative")
        path = f"{self._errors_dir}/reducer-{reducer_id:05d}"
        self._fs.write_text(path, f"{timestamp!r}\t{error!r}\n",
                            overwrite=True)

    # ------------------------------------------------------------ mapper side
    def read_errors(self, since: Optional[float] = None
                    ) -> List[Tuple[float, float]]:
        """All ``(timestamp, error)`` entries, optionally newer than
        ``since`` (the mapper keeps the timestamp of its last successful
        read and only considers fresh estimates)."""
        entries: List[Tuple[float, float]] = []
        for path in self._fs.list_files(self._errors_dir):
            try:
                text = self._fs.read_text(path)
            except FileNotFoundInHdfs:  # pragma: no cover - racy delete
                continue
            ts_str, _, err_str = text.strip().partition("\t")
            ts, err = float(ts_str), float(err_str)
            if since is None or ts > since:
                entries.append((ts, err))
        return entries

    def average_error(self, since: Optional[float] = None) -> Optional[float]:
        """Average error over all reducers (``None`` if nothing published).

        This is the quantity the mapper compares against the user's bound
        to decide between sample expansion and termination (Alg. 1, lines
        9-15)."""
        entries = self.read_errors(since)
        if not entries:
            return None
        return sum(err for _, err in entries) / len(entries)

    # ------------------------------------------------------------ termination
    def signal_stop(self) -> None:
        """Tell the persistent mappers to terminate (accuracy reached)."""
        self._fs.write_text(self._stop_path, "stop\n", overwrite=True)

    def stop_requested(self) -> bool:
        return self._fs.exists(self._stop_path)

    def cleanup(self) -> None:
        """Delete the channel's files (job teardown)."""
        for path in self._fs.list_files(self._base):
            self._fs.delete(path)
