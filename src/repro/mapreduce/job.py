"""Job configuration and result objects."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.costmodel import CostLedger
from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import InvalidJobError
from repro.mapreduce.faults import FaultPolicy
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.reducer import Reducer
from repro.mapreduce.types import KeyValue
from repro.util.rng import SeedLike

_job_ids = itertools.count()

#: Policies for splits whose blocks were lost to node failures.
ON_UNAVAILABLE_FAIL = "fail"   # stock Hadoop: the job cannot complete
ON_UNAVAILABLE_SKIP = "skip"   # EARL §3.4: continue on surviving data


@dataclass
class JobConf:
    """Everything needed to run one MapReduce job.

    Attributes mirror the knobs of a Hadoop ``JobConf`` that matter for
    the reproduction: input path, mapper/reducer/combiner classes, reducer
    count, split size, an optional ``output_path`` (reducer output is
    written back to HDFS as ``key<TAB>value`` lines, and — like Hadoop —
    the job refuses to clobber an existing output), plus simulation-
    specific settings (``cpu_factor``, ``on_unavailable``) and the
    ``params`` dict surfaced to tasks as ``ctx.config`` (EARL passes the
    sample fraction ``p`` this way, which ``correct()`` consumes).
    """

    name: str
    input_path: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Reducer] = None
    n_reducers: int = 1
    split_logical_bytes: Optional[int] = None
    cpu_factor: float = 1.0
    local_mode: bool = False
    on_unavailable: str = ON_UNAVAILABLE_FAIL
    output_path: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    seed: SeedLike = None
    #: Recovery behaviour (retries/blacklisting/speculation/salvage).
    #: ``None`` — and the all-off ``FaultPolicy()`` — keep the engine
    #: byte-identical to the fault-oblivious execution path.
    fault_policy: Optional[FaultPolicy] = None

    def __post_init__(self) -> None:
        if self.n_reducers < 1:
            raise InvalidJobError("n_reducers must be >= 1")
        if self.cpu_factor <= 0:
            raise InvalidJobError("cpu_factor must be positive")
        if self.on_unavailable not in (ON_UNAVAILABLE_FAIL, ON_UNAVAILABLE_SKIP):
            raise InvalidJobError(
                f"unknown on_unavailable policy {self.on_unavailable!r}")

    def new_job_id(self) -> str:
        return f"job_{next(_job_ids):06d}"


@dataclass
class JobResult:
    """Outcome of a job execution.

    ``simulated_seconds`` is the cost-model makespan (set-up + map wave
    makespan + reduce wave makespan); ``output`` is the flat list of
    reducer emissions in deterministic (partition, key) order.
    """

    job_id: str
    output: List[KeyValue]
    counters: Counters
    simulated_seconds: float
    map_tasks: int
    reduce_tasks: int
    skipped_splits: int
    input_fraction: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    driver_ledger: Optional[CostLedger] = None

    def grouped(self) -> Dict[Any, List[Any]]:
        """Output values grouped by key (convenience for assertions)."""
        grouped: Dict[Any, List[Any]] = {}
        for key, value in self.output:
            grouped.setdefault(key, []).append(value)
        return grouped

    def single_value(self) -> Any:
        """The value of a single-pair output; raises otherwise."""
        if len(self.output) != 1:
            raise ValueError(
                f"expected exactly one output pair, got {len(self.output)}")
        return self.output[0][1]
