"""Deterministic hash partitioning of intermediate keys.

The paper's key-based sampling argument (§1) rests on intermediate
``(key, value)`` pairs being spread over reducers by *random hashing*.
Python's builtin ``hash`` is salted per process, which would make runs
irreproducible, so we hash a stable byte encoding with CRC32 instead.
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.util.validation import check_positive_int


def stable_hash(key: Any) -> int:
    """Process-independent 32-bit hash of an intermediate key."""
    data = repr(key).encode("utf-8")
    return zlib.crc32(data) & 0xFFFFFFFF


class HashPartitioner:
    """Route each key to ``stable_hash(key) % num_partitions``."""

    def __init__(self, num_partitions: int) -> None:
        check_positive_int("num_partitions", num_partitions)
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions
