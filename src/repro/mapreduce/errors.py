"""Exception types raised by the simulated MapReduce engine."""

from __future__ import annotations


class MapReduceError(Exception):
    """Base class for engine failures."""


class JobFailedError(MapReduceError):
    """The job could not complete (e.g. required input data was lost)."""


class TaskFailedError(MapReduceError):
    """A single task attempt failed; the engine may retry or skip it."""


class InvalidJobError(MapReduceError):
    """The job configuration is unusable (bad reducer count, no input...)."""
