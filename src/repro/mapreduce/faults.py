"""Fault-tolerance policy for the simulated MapReduce engine.

EARL's §3.4 argues that early results should *survive* failures: with
~3 %/yr disk failure rates a long job is more likely than not to see a
node die, and restarting from scratch forfeits exactly the latency
advantage sampling bought.  This module captures the table-stakes Hadoop
behaviours the paper assumes underneath its sampling layer:

* **per-task retry** with capped exponential backoff — the backoff wait
  is charged to the simulated :class:`~repro.cluster.costmodel.CostLedger`
  (the cluster really does sit idle for it), never to wall-clock;
* **node blacklisting** — machines that keep producing failed attempts
  stop receiving tasks, shrinking the slot pool for later waves;
* **speculative execution** — straggler attempts get a charged duplicate
  attempt, and the task finishes at the earlier of the two;
* **partial-split salvage** — a map task that loses a block mid-read
  keeps the records it already produced instead of discarding the whole
  split (the degraded-results analogue of replica failover).

Everything is off by default: ``FaultPolicy()`` (and ``None``) leaves the
engine byte-identical to the fault-oblivious behaviour — same charges,
same RNG draws, same outputs.  The knobs only change execution once a
fault actually fires, and every recovery decision is deterministic (the
backoff schedule is a pure function of the attempt number; retries replay
the task's private RNG stream from a saved state), so a faulted run is
exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery knobs of one job (or one EARL driver's jobs).

    Attributes
    ----------
    max_task_retries:
        Extra attempts granted to a failed task (0 disables retries —
        the first :class:`~repro.mapreduce.errors.TaskFailedError`
        propagates exactly as today).
    retry_backoff_seconds, backoff_factor, max_backoff_seconds:
        Deterministic capped exponential backoff: attempt ``k`` (0-based
        failure count) waits ``min(max_backoff_seconds,
        retry_backoff_seconds * backoff_factor**k)`` simulated seconds,
        charged to the task ledger's ``startup`` category.
    blacklist_after:
        Blacklist a node once it has produced this many failed attempts
        (0 disables).  Blacklisted nodes stop contributing slots to
        later waves of the same :class:`~repro.mapreduce.runtime.JobClient`.
    speculative:
        Launch a charged duplicate attempt for straggler tasks; the task
        finishes at ``min(original, startup + median duration)``.
    speculative_slowdown:
        A task is a straggler when its duration exceeds this multiple of
        the wave's median duration.
    salvage_partial_splits:
        When a map task loses a block mid-read under the ``skip``
        unavailability policy, keep the records it already emitted and
        account only the unread tail as lost, instead of skipping the
        whole split.
    """

    max_task_retries: int = 0
    retry_backoff_seconds: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0
    blacklist_after: int = 0
    speculative: bool = False
    speculative_slowdown: float = 2.0
    salvage_partial_splits: bool = False

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries cannot be negative")
        if self.retry_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff seconds cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.blacklist_after < 0:
            raise ValueError("blacklist_after cannot be negative")
        if self.speculative_slowdown <= 1.0:
            raise ValueError("speculative_slowdown must be > 1")

    # ------------------------------------------------------------------ state
    @property
    def enabled(self) -> bool:
        """Whether any recovery behaviour is switched on."""
        return (self.max_task_retries > 0
                or self.blacklist_after > 0
                or self.speculative
                or self.salvage_partial_splits)

    def backoff(self, failures: int) -> float:
        """Simulated seconds to wait before the attempt following the
        ``failures``-th failure (0-based)."""
        return min(self.max_backoff_seconds,
                   self.retry_backoff_seconds * self.backoff_factor ** failures)

    @classmethod
    def resilient(cls) -> "FaultPolicy":
        """A sensible everything-on preset (Hadoop-ish defaults)."""
        return cls(max_task_retries=3, blacklist_after=3, speculative=True,
                   salvage_partial_splits=True)
