"""Map-side combining.

A combiner is a reducer run on each mapper's local output before the
shuffle; it shrinks shuffle traffic for algebraic aggregates.  The engine
applies it per partition buffer, mirroring Hadoop's spill-time combining.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

from repro.mapreduce.reducer import Reducer
from repro.mapreduce.types import KeyValue, TaskContext


def run_combiner(combiner: Reducer, pairs: List[KeyValue],
                 ctx: TaskContext) -> List[KeyValue]:
    """Group ``pairs`` by key and run ``combiner`` over each group.

    Returns the combined pair list (deterministic key order).  Raises if
    the combiner emits keys outside its input group — that would break
    partitioning invariants (each combined pair must still route to the
    same reducer).
    """
    groups: Dict[Hashable, List[Any]] = {}
    order: List[Hashable] = []
    for key, value in pairs:
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(value)
    combined: List[KeyValue] = []
    for key in order:
        for out_key, out_value in combiner.reduce(key, groups[key], ctx):
            if out_key != key:
                raise ValueError(
                    "combiner must preserve keys: "
                    f"group {key!r} emitted {out_key!r}")
            combined.append((out_key, out_value))
    return combined
