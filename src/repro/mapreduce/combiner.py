"""Map-side combining.

A combiner is a reducer run on each mapper's local output before the
shuffle; it shrinks shuffle traffic for algebraic aggregates.  The engine
applies it per partition buffer, mirroring Hadoop's spill-time combining.

:class:`GroupStateCombiner` is the grouped pre-aggregation path: it folds
each key's raw values into one mergeable estimator state
(:class:`~repro.core.estimators.EstimatorState`) map-side, so a grouped
aggregation ships one small state per ``(key, spill)`` through the
shuffle instead of every record — the classic combiner win, expressed in
EARL's incremental-reduce vocabulary (states are exactly what
:class:`~repro.core.earl.StatisticReducer` merges reduce-side).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List

from repro.mapreduce.reducer import Reducer
from repro.mapreduce.types import KeyValue, TaskContext


def run_combiner(combiner: Reducer, pairs: List[KeyValue],
                 ctx: TaskContext) -> List[KeyValue]:
    """Group ``pairs`` by key and run ``combiner`` over each group.

    Returns the combined pair list (deterministic key order).  Raises if
    the combiner emits keys outside its input group — that would break
    partitioning invariants (each combined pair must still route to the
    same reducer).
    """
    groups: Dict[Hashable, List[Any]] = {}
    order: List[Hashable] = []
    for key, value in pairs:
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(value)
    combined: List[KeyValue] = []
    for key in order:
        for out_key, out_value in combiner.reduce(key, groups[key], ctx):
            if out_key != key:
                raise ValueError(
                    "combiner must preserve keys: "
                    f"group {key!r} emitted {out_key!r}")
            combined.append((out_key, out_value))
    return combined


def is_estimator_state(value: Any) -> bool:
    """Whether ``value`` looks like a mergeable estimator state (the
    duck type :class:`~repro.core.earl.StatisticReducer` already
    recognizes: ``result()`` + ``add()``)."""
    return hasattr(value, "result") and hasattr(value, "add")


class GroupStateCombiner(Reducer):
    """Fold each key's values into one mergeable estimator state.

    Emitted states are merged again at every combining level (re-spills,
    then the reducer), so the path is associative end to end; only
    statistics whose state supports ``merge`` qualify — the constructor
    rejects the rest up front rather than failing mid-shuffle.
    """

    #: Pure per-call state — combine waves may run concurrently.
    parallel_safe = True

    def __init__(self, statistic: Any) -> None:
        # Lazy import: mapreduce sits below core in the layering; pull
        # the statistic registry in at construction time only.
        from repro.core.estimators import get_statistic
        self._stat = get_statistic(statistic)
        probe = self._stat.make_state()
        if not hasattr(probe, "merge"):
            raise ValueError(
                f"statistic {self._stat.name!r} has no mergeable state; "
                "map-side pre-aggregation needs merge() (holistic "
                "statistics such as quantiles must ship raw values)")

    def reduce(self, key: Hashable, values: Any,
               ctx: TaskContext) -> Iterable[KeyValue]:
        state = self._stat.make_state()
        for value in values:
            if is_estimator_state(value):
                state.merge(value)
            else:
                state.add(float(value))
        yield key, state
