"""Reducer APIs, including the paper's incremental reduce extension.

EARL extends the classic ``reduce(k2, list(v2)) -> (k3, v3)`` with a
finer-grained protocol (§2.1) of four methods:

* ``initialize()`` — reduce a set of values into a *state*
  (``<k,v1>,...,<k,vk> -> <k,state>``); states are small and mergeable,
  which is what makes in-memory bootstrap processing feasible.
* ``update()`` — fold a new input (another state, or a raw value) into an
  existing state.
* ``finalize()`` — turn the state into the output value (and, in EARL's
  accuracy-estimation stage, the point where the current error is read).
* ``correct()`` — adjust a result computed from a fraction ``p`` of the
  data (e.g. scale a SUM by ``1/p``); the system cannot know the job's
  semantics, so the correction logic belongs to the user.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from repro.mapreduce.types import KeyValue, TaskContext


class Reducer:
    """Classic reducer: override :meth:`reduce`.

    :attr:`parallel_safe` mirrors :attr:`repro.mapreduce.mapper.Mapper.parallel_safe`:
    a ``True`` declaration lets the engine run the reduce wave's tasks on
    a parallel :class:`~repro.exec.Executor`.  Leave it ``False`` (the
    default) for reducers whose cross-task state the driver reads after
    the job — e.g. EARL's :class:`~repro.core.earl.BootstrapReducer`,
    which accumulates per-key estimation stages the driver inspects.
    """

    #: Opt-in flag for parallel task waves (see class docstring).
    parallel_safe: bool = False

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first key group of a task."""

    def reduce(self, key: Hashable, values: Sequence[Any],
               ctx: TaskContext) -> Iterable[KeyValue]:
        raise NotImplementedError

    def cleanup(self, ctx: TaskContext) -> Iterable[KeyValue]:
        """Called once after the last key group; may emit trailing pairs."""
        return ()


class IdentityReducer(Reducer):
    """Emit every value unchanged."""

    parallel_safe = True

    def reduce(self, key: Hashable, values: Sequence[Any],
               ctx: TaskContext) -> Iterable[KeyValue]:
        for value in values:
            yield key, value


class IncrementalReducer(Reducer):
    """EARL's four-method incremental reduce protocol.

    Subclasses implement ``initialize``/``update``/``finalize`` (and
    optionally ``correct``); the classic :meth:`reduce` is derived from
    them, so an incremental reducer runs unmodified on the stock engine —
    the paper's "minimal modifications to the user's MR job" promise.
    """

    # -- the four-method protocol -----------------------------------------
    def initialize(self, values: Sequence[Any]) -> Any:
        """Reduce a batch of raw values into a state."""
        raise NotImplementedError

    def update(self, state: Any, new_input: Any) -> Any:
        """Fold ``new_input`` (a state or a raw value) into ``state``."""
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        """Compute the output value from a state."""
        raise NotImplementedError

    def correct(self, result: Any, p: float) -> Any:
        """Adjust ``result`` given that only fraction ``p`` of the data was
        used.  Default: no correction (right for means, medians, ratios).
        """
        return result

    # -- classic API derived from the protocol -----------------------------
    def reduce(self, key: Hashable, values: Sequence[Any],
               ctx: TaskContext) -> Iterable[KeyValue]:
        state = self.initialize(values)
        result = self.finalize(state)
        p = float(ctx.config.get("sample_fraction", 1.0))
        if p < 1.0:
            result = self.correct(result, p)
        yield key, result


class SumReducer(IncrementalReducer):
    """SUM with the paper's canonical ``1/p`` correction (§2.1)."""

    parallel_safe = True

    def initialize(self, values: Sequence[Any]) -> float:
        return float(sum(values))

    def update(self, state: float, new_input: Any) -> float:
        return state + float(new_input)

    def finalize(self, state: float) -> float:
        return state

    def correct(self, result: float, p: float) -> float:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"sample fraction p must be in (0, 1], got {p}")
        return result / p


class MeanReducer(IncrementalReducer):
    """AVG as a mergeable ``(sum, count)`` state; needs no correction."""

    parallel_safe = True

    def initialize(self, values: Sequence[Any]) -> tuple[float, int]:
        total = 0.0
        count = 0
        for v in values:
            total += float(v)
            count += 1
        return total, count

    def update(self, state: tuple[float, int], new_input: Any) -> tuple[float, int]:
        total, count = state
        if isinstance(new_input, tuple) and len(new_input) == 2:
            return total + new_input[0], count + new_input[1]
        return total + float(new_input), count + 1

    def finalize(self, state: tuple[float, int]) -> float:
        total, count = state
        if count == 0:
            raise ValueError("mean of an empty group is undefined")
        return total / count
