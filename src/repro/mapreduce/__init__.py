"""Simulated MapReduce engine with EARL's extensions.

Implements the classic two-stage MR model plus the three modifications
the paper makes to Hadoop (§2.1): early reduce input, persistent mappers
(``warm_start``), and a mapper↔reducer feedback channel
(:class:`FeedbackChannel`), along with the four-method incremental reduce
protocol (:class:`IncrementalReducer`).
"""

from repro.mapreduce.combiner import (
    GroupStateCombiner,
    is_estimator_state,
    run_combiner,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.errors import (
    InvalidJobError,
    JobFailedError,
    MapReduceError,
    TaskFailedError,
)
from repro.mapreduce.faults import FaultPolicy
from repro.mapreduce.job import (
    ON_UNAVAILABLE_FAIL,
    ON_UNAVAILABLE_SKIP,
    JobConf,
    JobResult,
)
from repro.mapreduce.mapper import (
    GlobalValueMapper,
    IdentityMapper,
    Mapper,
    ProjectionMapper,
)
from repro.mapreduce.partitioner import HashPartitioner, stable_hash
from repro.mapreduce.pipeline import FeedbackChannel
from repro.mapreduce.reducer import (
    IdentityReducer,
    IncrementalReducer,
    MeanReducer,
    Reducer,
    SumReducer,
)
from repro.mapreduce.runtime import FullScanSource, JobClient, RecordSource
from repro.mapreduce.types import KeyValue, TaskContext, estimate_pair_bytes

__all__ = [
    "JobClient",
    "JobConf",
    "JobResult",
    "Mapper",
    "IdentityMapper",
    "ProjectionMapper",
    "GlobalValueMapper",
    "Reducer",
    "IdentityReducer",
    "IncrementalReducer",
    "SumReducer",
    "MeanReducer",
    "HashPartitioner",
    "stable_hash",
    "FeedbackChannel",
    "FullScanSource",
    "RecordSource",
    "Counters",
    "KeyValue",
    "TaskContext",
    "FaultPolicy",
    "estimate_pair_bytes",
    "run_combiner",
    "GroupStateCombiner",
    "is_estimator_state",
    "MapReduceError",
    "JobFailedError",
    "TaskFailedError",
    "InvalidJobError",
    "ON_UNAVAILABLE_FAIL",
    "ON_UNAVAILABLE_SKIP",
]
