"""Job counters, mirroring Hadoop's built-in counter groups.

Counters are the engine's observable side channel: tests and benchmarks
use them to assert how much data a job actually touched (e.g. pre-map
sampling reads a small fraction of records; EARL's fallback path reads
everything).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.obs.metrics import REGISTRY as _METRICS

#: Canonical counter names used by the engine.
MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
SKIPPED_SPLITS = "SKIPPED_SPLITS"
FAILED_TASKS = "FAILED_TASKS"
SPILLED_BYTES = "SPILLED_BYTES"
#: Fault-tolerance side channel (all zero unless a FaultPolicy fires).
TASK_RETRIES = "TASK_RETRIES"
SPECULATIVE_TASKS = "SPECULATIVE_TASKS"
BLACKLISTED_NODES = "BLACKLISTED_NODES"
SALVAGED_SPLITS = "SALVAGED_SPLITS"


class Counters:
    """A concurrent-safe-enough (single-threaded sim) counter bag."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def publish(self) -> None:
        """Mirror this bag into the process-wide metrics registry as
        ``repro_mr_counter_total{name=...}``.  Call once per finished
        job (counters are per-job bags, so each publish is a disjoint
        contribution).  No-op when telemetry is disabled."""
        if not _METRICS.enabled:
            return
        for name, value in self._values.items():
            if value:
                _METRICS.counter(
                    "repro_mr_counter_total", labels={"name": name},
                    help="Hadoop-style job counters, summed over jobs",
                ).inc(value)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
