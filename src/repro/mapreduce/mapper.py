"""Mapper API of the simulated MapReduce engine.

A mapper receives ``(k1, v1)`` pairs — for text input, ``(byte_offset,
line)`` exactly as Hadoop's ``TextInputFormat`` delivers them — and emits
intermediate ``(k2, v2)`` pairs by *yielding* them.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.mapreduce.types import KeyValue, TaskContext


class Mapper:
    """Base class for user map functions.

    Subclasses override :meth:`map`; :meth:`setup` and :meth:`cleanup`
    bracket a task's record stream (``cleanup`` may emit trailing pairs —
    that is how in-mapper combining flushes its buffer).

    Set :attr:`parallel_safe` to ``True`` on a subclass to declare that
    concurrent map tasks sharing this instance neither race on mutable
    state nor need their mutations seen by the driver afterwards; the
    engine may then fan the map wave out over a parallel
    :class:`~repro.exec.Executor` (see
    :func:`repro.mapreduce.runtime.wave_parallelizable`).  The default is
    conservative: undeclared mappers keep their wave serial.
    """

    #: Opt-in flag for parallel task waves (see class docstring).
    parallel_safe: bool = False

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first record of a task."""

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        """Transform one input record into zero or more intermediate pairs."""
        raise NotImplementedError

    def cleanup(self, ctx: TaskContext) -> Iterable[KeyValue]:
        """Called once after the last record; may emit trailing pairs."""
        return ()


class IdentityMapper(Mapper):
    """Pass records through unchanged."""

    parallel_safe = True

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        yield key, value


class ProjectionMapper(Mapper):
    """Parse a delimited text line and emit ``(group_key, float_value)``.

    A workhorse for the evaluation jobs: the synthetic datasets are lines
    of ``key<TAB>value`` (or bare numeric values, in which case a constant
    group key is used so a single reducer sees the whole stream).
    """

    parallel_safe = True  # pure function of the input line

    def __init__(self, *, delimiter: str = "\t",
                 constant_key: Hashable = "all") -> None:
        self.delimiter = delimiter
        self.constant_key = constant_key

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        text = value if isinstance(value, str) else str(value)
        if not text:
            return
        if self.delimiter in text:
            group, _, payload = text.partition(self.delimiter)
            yield group, float(payload)
        else:
            yield self.constant_key, float(text)


class GlobalValueMapper(Mapper):
    """Emit every value under one constant key (whole-dataset statistics).

    For ``key<TAB>value`` lines, the key column is *discarded*: use this
    when the question is about the overall distribution (e.g. the global
    median) rather than per-group values.
    """

    parallel_safe = True  # pure function of the input line

    def __init__(self, *, delimiter: str = "\t",
                 constant_key: Hashable = "all") -> None:
        self.delimiter = delimiter
        self.constant_key = constant_key

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        text = value if isinstance(value, str) else str(value)
        if not text:
            return
        if self.delimiter in text:
            _, _, payload = text.partition(self.delimiter)
            yield self.constant_key, float(payload)
        else:
            yield self.constant_key, float(text)
