"""repro.obs — zero-perturbation telemetry for the EARL reproduction.

Three small pieces, one switch:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket histograms, Prometheus exposition).
* :mod:`repro.obs.trace` — span tracing with ``trace_id`` propagation
  from ``ApproxQueryService.submit`` down to map/reduce waves, exported
  in Chrome ``chrome://tracing`` event format.
* :mod:`repro.obs.convergence` — per-round error-vs-rows-vs-time
  trajectories with loss/degraded/deadline events and budget decisions.

Everything defaults to **disabled** and the disabled path is a single
attribute check per call site: no clock reads, no RNG, no allocation —
the byte-identity invariants (identical results, RNG streams and event
bytes across backends and restarts) hold trivially.  Flip the whole
subsystem with :func:`enable_telemetry` / :func:`disable_telemetry`;
DESIGN.md §12 documents the naming scheme and overhead budget.
"""
from __future__ import annotations

from repro.obs.convergence import (
    Allocation,
    ConvergenceTrace,
    RoundPoint,
    TraceEvent,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import NULL_SPAN, Span, SpanContext, TRACER, Tracer

__all__ = [
    "Allocation",
    "ConvergenceTrace",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REGISTRY",
    "RoundPoint",
    "Span",
    "SpanContext",
    "TRACER",
    "TraceEvent",
    "Tracer",
    "disable_telemetry",
    "enable_telemetry",
    "reset_telemetry",
    "telemetry_enabled",
]


def enable_telemetry() -> None:
    """Turn on metrics and tracing process-wide."""
    REGISTRY.enable()
    TRACER.enable()


def disable_telemetry() -> None:
    """Back to the zero-perturbation default."""
    REGISTRY.disable()
    TRACER.disable()


def telemetry_enabled() -> bool:
    """True when either metrics or tracing is live."""
    return REGISTRY.enabled or TRACER.enabled


def reset_telemetry() -> None:
    """Zero all metric series and drop recorded spans (keeps switches)."""
    REGISTRY.reset()
    TRACER.clear()
