"""Span-based tracing across service → scheduler → engine → mapreduce.

A :class:`Tracer` records wall-clock spans with a ``trace_id`` /
``span_id`` / ``parent_id`` triple so a whole session's life — submit,
dispatch window, engine rounds, executor waves, map/reduce waves — can
be exported as one connected tree in the Chrome ``chrome://tracing``
event format (open via ``chrome://tracing`` or https://ui.perfetto.dev).

Context propagation
-------------------
Within a thread the *ambient* parent rides a :class:`contextvars`
variable: ``with TRACER.span("scheduler.round"):`` automatically parents
any span opened deeper in the same thread (engine rounds, executor
waves).  Across threads — the service's runner threads drive engines
synchronously — the spawning code captures ``span.context`` and the
worker calls :meth:`Tracer.activate` on entry.

Zero-perturbation contract (DESIGN.md §12)
------------------------------------------
``enabled`` defaults to False; a disabled tracer returns one shared
no-op span object from every call — no clock read, no allocation, no
RNG, no lock.  Span ids come from :func:`itertools.count` (the
``_earl_run_ids`` idiom), never from an RNG, so tracing can never
perturb the repro's pinned random streams.
"""
from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanContext", "Tracer", "TRACER", "NULL_SPAN"]


class SpanContext(Tuple[str, str]):
    """Immutable ``(trace_id, span_id)`` pair handed across threads."""

    __slots__ = ()

    def __new__(cls, trace_id: str, span_id: str) -> "SpanContext":
        return tuple.__new__(cls, (trace_id, span_id))

    @property
    def trace_id(self) -> str:
        return self[0]

    @property
    def span_id(self) -> str:
        return self[1]


_CURRENT: "contextvars.ContextVar[Optional[SpanContext]]" = \
    contextvars.ContextVar("repro_obs_current_span", default=None)


class Span:
    """One timed operation.  Use as a context manager (activates itself
    as the ambient parent) or call :meth:`finish` explicitly for spans
    that outlive a single scope (the service's per-session root)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "end", "attrs", "thread_id", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self._token: Optional[contextvars.Token] = None

    # ----------------------------------------------------------- public
    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()
            self._tracer._record(self)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.context)
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.finish()
        return False


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()
    name = ""
    trace_id = None
    span_id = None
    parent_id = None
    context = None
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans in a bounded in-memory ring; disabled by default."""

    def __init__(self, max_spans: int = 50_000) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=max_spans)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------ switch
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # --------------------------------------------------------------- ids
    def new_trace_id(self) -> str:
        """Deterministic process-local trace id (counter, never RNG)."""
        return f"t{next(self._trace_ids):08d}"

    # ------------------------------------------------------------- spans
    def span(self, name: str, *, trace_id: Optional[str] = None,
             parent: Optional[object] = None,
             attrs: Optional[Dict[str, Any]] = None):
        """Open a span.  Parent resolution: explicit ``parent`` (a
        :class:`Span` or :class:`SpanContext`) > the ambient thread-local
        context > none (new root, fresh trace unless ``trace_id`` is
        pinned)."""
        if not self._enabled:
            return NULL_SPAN
        parent_ctx: Optional[SpanContext]
        if parent is None:
            parent_ctx = _CURRENT.get()
        elif isinstance(parent, Span):
            parent_ctx = parent.context
        else:
            parent_ctx = parent  # SpanContext or None
        if trace_id is None:
            trace_id = parent_ctx.trace_id if parent_ctx is not None \
                else self.new_trace_id()
        parent_id = parent_ctx.span_id if parent_ctx is not None \
            and parent_ctx.trace_id == trace_id else None
        return Span(self, name, trace_id, f"s{next(self._span_ids):08d}",
                    parent_id, attrs)

    def current(self) -> Optional[SpanContext]:
        if not self._enabled:
            return None
        return _CURRENT.get()

    def activate(self, context: Optional[SpanContext]):
        """Install ``context`` as the ambient parent for this thread;
        returns a token for :meth:`deactivate`.  No-op when disabled."""
        if not self._enabled:
            return None
        return _CURRENT.set(context)

    def deactivate(self, token) -> None:
        if token is not None:
            _CURRENT.reset(token)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def adopt_orphans(self, trace_id: str, new_root: Span) -> int:
        """Re-parent recorded spans of ``trace_id`` whose parent was
        never recorded onto ``new_root``; returns how many moved.

        A crash kills a session's root span before it can finish, so
        the spans recorded *before* the crash dangle when the restarted
        service opens a fresh root on the same trace id.  Adopting them
        under the new root keeps the continued trace one connected
        tree.  Only top-of-fragment spans move — a recorded span whose
        parent is also recorded keeps its subtree intact."""
        if not self._enabled:
            return 0
        with self._lock:
            known = {s.span_id for s in self._spans}
            moved = 0
            for s in self._spans:
                if s.trace_id != trace_id:
                    continue
                if s.parent_id is None or s.parent_id not in known:
                    s.parent_id = new_root.span_id
                    moved += 1
            return moved

    # ------------------------------------------------------------ export
    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            items = list(self._spans)
        if trace_id is None:
            return items
        return [s for s in items if s.trace_id == trace_id]

    def export_chrome(self, trace_id: Optional[str] = None) \
            -> Dict[str, Any]:
        """Chrome trace-event JSON (``chrome://tracing`` "X" events)."""
        items = self.spans(trace_id)
        base = min((s.start for s in items), default=0.0)
        events = []
        for s in items:
            end = s.end if s.end is not None else s.start
            args = dict(s.attrs)
            args["trace_id"] = s.trace_id
            args["span_id"] = s.span_id
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            events.append({
                "name": s.name,
                "cat": s.trace_id,
                "ph": "X",
                "ts": (s.start - base) * 1e6,
                "dur": (end - s.start) * 1e6,
                "pid": 0,
                "tid": s.thread_id,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ---------------------------------------------------------- analysis
    def root(self, trace_id: str) -> Optional[Span]:
        roots = [s for s in self.spans(trace_id) if s.parent_id is None]
        if not roots:
            return None
        return min(roots, key=lambda s: s.start)

    def is_connected(self, trace_id: str) -> bool:
        """Every span's parent chain reaches a single root."""
        items = self.spans(trace_id)
        if not items:
            return False
        by_id = {s.span_id: s for s in items}
        roots = [s for s in items if s.parent_id is None]
        if len(roots) != 1:
            return False
        for s in items:
            seen = set()
            cur = s
            while cur.parent_id is not None:
                if cur.span_id in seen:
                    return False
                seen.add(cur.span_id)
                nxt = by_id.get(cur.parent_id)
                if nxt is None:
                    return False
                cur = nxt
            if cur is not roots[0]:
                return False
        return True

    def coverage(self, trace_id: str) -> float:
        """Fraction of the root span's wall time covered by the union of
        its descendant spans (the ≥95 % acceptance gauge)."""
        items = self.spans(trace_id)
        root = self.root(trace_id)
        if root is None or root.end is None:
            return 0.0
        duration = root.end - root.start
        if duration <= 0:
            return 1.0
        intervals = sorted(
            (max(s.start, root.start),
             min(s.end if s.end is not None else root.end, root.end))
            for s in items if s is not root)
        covered = 0.0
        cursor = root.start
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            covered += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        return covered / duration


#: The process-wide tracer (disabled by default).
TRACER = Tracer()
