"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the sink every other stratum publishes into — the
service's session lifecycle, the scheduler's budget grants, the engines'
round counts, the mapreduce runtime's simulated-cost breakdowns and job
counters.  It is deliberately tiny: three instrument kinds, one lock,
JSON snapshots and Prometheus text exposition.

Zero-perturbation contract (DESIGN.md §12)
------------------------------------------
* ``enabled`` defaults to **False** and every record call starts with a
  single attribute check that bails out immediately, so the disabled
  registry costs one branch per call site and cannot affect results,
  RNG streams or event bytes.
* No instrument ever touches an RNG, and no instrument reads a clock —
  wall time belongs to :mod:`repro.obs.trace`, simulated time to
  :class:`repro.cluster.costmodel.CostLedger`.
* Instruments may be created (and cached at module import) while the
  registry is disabled; flipping ``enabled`` later activates them all.

Metric names follow Prometheus conventions: ``repro_<noun>_total`` for
counters, ``repro_<noun>`` for gauges, ``repro_<noun>_<unit>`` for
histograms, with lowercase label keys.
"""
from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram buckets — spans the interesting range for both
#: second-scale latencies and small dimensionless ratios.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0)


def _label_items(labels: Optional[Mapping[str, object]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common shape: a named, labelled series owned by one registry."""

    kind = "untyped"
    __slots__ = ("name", "labels", "_registry")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: LabelItems) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels

    def _reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _sample(self) -> Dict[str, object]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing float."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: LabelItems) -> None:
        super().__init__(registry, name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        reg = self._registry
        if not reg._enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with reg._lock:
            self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, live sessions)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: LabelItems) -> None:
        super().__init__(registry, name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        reg = self._registry
        if not reg._enabled:
            return
        with reg._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        reg = self._registry
        if not reg._enabled:
            return
        with reg._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _reset(self) -> None:
        self.value = 0.0

    def _sample(self) -> Dict[str, object]:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket histogram (upper-bound buckets, Prometheus style).

    Buckets are fixed at creation: observation is a linear scan over a
    short tuple — no allocation, no sorting, no clock.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: LabelItems,
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(registry, name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        reg = self._registry
        if not reg._enabled:
            return
        with reg._lock:
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            self.counts[idx] += 1
            self.count += 1
            self.sum += value

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def _sample(self) -> Dict[str, object]:
        cumulative: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            cumulative.append(running)
        return {
            "labels": dict(self.labels),
            "buckets": [
                {"le": bound, "count": cumulative[i]}
                for i, bound in enumerate(self.buckets)
            ] + [{"le": "+Inf", "count": cumulative[-1]}],
            "count": self.count,
            "sum": self.sum,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe instrument factory + snapshot/exposition surface.

    One process-wide instance (:data:`REGISTRY`) serves the whole repro;
    tests may build private registries.  ``enabled`` starts False.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------ switch
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    # ----------------------------------------------------------- factory
    def _get(self, kind: str, name: str,
             labels: Optional[Mapping[str, object]],
             help: str, **kwargs) -> _Instrument:
        items = _label_items(labels)
        key = (name, items)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing_kind}, cannot re-register as {kind}")
            inst = self._instruments.get(key)
            if inst is None:
                inst = _KINDS[kind](self, name, items, **kwargs)
                self._instruments[key] = inst
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            elif help and name not in self._help:
                self._help[name] = help
            return inst

    def counter(self, name: str,
                labels: Optional[Mapping[str, object]] = None,
                help: str = "") -> Counter:
        return self._get("counter", name, labels, help)  # type: ignore

    def gauge(self, name: str,
              labels: Optional[Mapping[str, object]] = None,
              help: str = "") -> Gauge:
        return self._get("gauge", name, labels, help)  # type: ignore

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, object]] = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        return self._get("histogram", name, labels, help,  # type: ignore
                         buckets=buckets)

    # ------------------------------------------------------------ access
    def value(self, name: str,
              labels: Optional[Mapping[str, object]] = None) -> float:
        """Current value of a counter/gauge series (0.0 if absent)."""
        inst = self._instruments.get((name, _label_items(labels)))
        if inst is None or not hasattr(inst, "value"):
            return 0.0
        return inst.value  # type: ignore[attr-defined]

    def series(self, name: str) -> List[_Instrument]:
        """Every labelled series registered under ``name``."""
        return [inst for (n, _), inst in sorted(self._instruments.items())
                if n == name]

    def reset(self) -> None:
        """Zero every series (instruments stay registered)."""
        with self._lock:
            for inst in self._instruments.values():
                inst._reset()

    # --------------------------------------------------------- rendering
    def snapshot(self) -> Dict[str, object]:
        """Structured JSON-friendly dump of every series."""
        with self._lock:
            metrics: Dict[str, Dict[str, object]] = {}
            for (name, _), inst in sorted(self._instruments.items()):
                entry = metrics.setdefault(name, {
                    "type": inst.kind,
                    "help": self._help.get(name, ""),
                    "series": [],
                })
                entry["series"].append(inst._sample())  # type: ignore
            return {"enabled": self._enabled, "metrics": metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            by_name: Dict[str, List[_Instrument]] = {}
            for (name, _), inst in sorted(self._instruments.items()):
                by_name.setdefault(name, []).append(inst)
            for name, insts in by_name.items():
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {insts[0].kind}")
                for inst in insts:
                    if isinstance(inst, Histogram):
                        sample = inst._sample()
                        for bucket in sample["buckets"]:  # type: ignore
                            le = bucket["le"]
                            le_txt = "+Inf" if le == "+Inf" else _fmt(le)
                            lines.append(
                                f"{name}_bucket"
                                f"{_labels_txt(inst.labels, le=le_txt)} "
                                f"{bucket['count']}")
                        lines.append(
                            f"{name}_sum{_labels_txt(inst.labels)} "
                            f"{_fmt(inst.sum)}")
                        lines.append(
                            f"{name}_count{_labels_txt(inst.labels)} "
                            f"{inst.count}")
                    else:
                        lines.append(
                            f"{name}{_labels_txt(inst.labels)} "
                            f"{_fmt(inst.value)}")  # type: ignore
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_txt(items: LabelItems, **extra: str) -> str:
    pairs = list(items) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


#: The process-wide registry every stratum publishes into.
REGISTRY = MetricsRegistry()
