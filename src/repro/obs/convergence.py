"""Structured convergence telemetry: error vs. rows vs. time, per round.

EARL's product is a *trajectory* — the error bound tightening as the
sample grows (PAPER.md §3).  A :class:`ConvergenceTrace` captures that
trajectory for one query (or one dispatch window of queries): a point
per engine round and key, discrete events (loss, degraded, deadline,
retry, restart), and the scheduler's budget-allocation decisions from
:func:`repro.scheduler.budget.allocate_budget`.

Traces are plain data: thread-safe to append, JSON-serialisable via
:meth:`ConvergenceTrace.to_dict`, renderable as a table via
:meth:`ConvergenceTrace.rows`.  They are only ever *created* when
telemetry is enabled (the service and scheduler gate construction), so
the disabled path allocates nothing.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RoundPoint", "TraceEvent", "Allocation", "ConvergenceTrace"]


@dataclass(frozen=True)
class RoundPoint:
    """One (key, round) sample on the convergence trajectory."""

    key: str                      # query name / group key / "value"
    round: int                    # engine round / snapshot ordinal
    rows: int                     # cumulative rows consumed
    error: Optional[float]        # current bootstrap error estimate
    target: Optional[float] = None          # the sigma being chased
    wall_seconds: Optional[float] = None    # real elapsed since trace start
    sim_seconds: Optional[float] = None     # simulated cluster seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key, "round": self.round, "rows": self.rows,
            "error": self.error, "target": self.target,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }


@dataclass(frozen=True)
class TraceEvent:
    """A discrete incident on the trajectory (loss, degraded, …)."""

    kind: str                     # "loss" | "degraded" | "deadline" |
                                  # "retry" | "restart" | ...
    key: Optional[str] = None
    round: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "key": self.key, "round": self.round,
                "detail": dict(self.detail)}


@dataclass(frozen=True)
class Allocation:
    """One global budget split across a dispatch window's live arms."""

    round: int
    grants: Dict[str, int]        # arm key -> rows granted this round
    total: Optional[int] = None   # the round budget that was split

    def to_dict(self) -> Dict[str, Any]:
        return {"round": self.round, "grants": dict(self.grants),
                "total": self.total}


class ConvergenceTrace:
    """Append-only per-query/per-window convergence record."""

    def __init__(self, name: str = "",
                 trace_id: Optional[str] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._points: List[RoundPoint] = []
        self._events: List[TraceEvent] = []
        self._allocations: List[Allocation] = []

    # --------------------------------------------------------- recording
    def record_round(self, key: str, *, round: int, rows: int,
                     error: Optional[float],
                     target: Optional[float] = None,
                     wall_seconds: Optional[float] = None,
                     sim_seconds: Optional[float] = None) -> None:
        point = RoundPoint(key=str(key), round=int(round), rows=int(rows),
                           error=None if error is None else float(error),
                           target=target, wall_seconds=wall_seconds,
                           sim_seconds=sim_seconds)
        with self._lock:
            self._points.append(point)

    def record_event(self, kind: str, *, key: Optional[str] = None,
                     round: Optional[int] = None,
                     **detail: Any) -> None:
        event = TraceEvent(kind=kind, key=key, round=round, detail=detail)
        with self._lock:
            self._events.append(event)

    def record_allocation(self, round: int, grants: Dict[str, int],
                          total: Optional[int] = None) -> None:
        alloc = Allocation(round=int(round),
                           grants={str(k): int(v)
                                   for k, v in grants.items()},
                           total=total)
        with self._lock:
            self._allocations.append(alloc)

    # ------------------------------------------------------------ access
    @property
    def points(self) -> List[RoundPoint]:
        with self._lock:
            return list(self._points)

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    @property
    def allocations(self) -> List[Allocation]:
        with self._lock:
            return list(self._allocations)

    def keys(self) -> List[str]:
        seen: Dict[str, None] = {}
        for p in self.points:
            seen.setdefault(p.key)
        return list(seen)

    def last_point(self, key: str) -> Optional[RoundPoint]:
        for p in reversed(self.points):
            if p.key == key:
                return p
        return None

    # ----------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "trace_id": self.trace_id,
                "points": [p.to_dict() for p in self._points],
                "events": [e.to_dict() for e in self._events],
                "allocations": [a.to_dict() for a in self._allocations],
            }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ConvergenceTrace":
        trace = cls(name=doc.get("name", ""),
                    trace_id=doc.get("trace_id"))
        for p in doc.get("points", []):
            trace.record_round(
                p["key"], round=p["round"], rows=p["rows"],
                error=p.get("error"), target=p.get("target"),
                wall_seconds=p.get("wall_seconds"),
                sim_seconds=p.get("sim_seconds"))
        for e in doc.get("events", []):
            trace.record_event(e["kind"], key=e.get("key"),
                               round=e.get("round"),
                               **e.get("detail", {}))
        for a in doc.get("allocations", []):
            trace.record_allocation(a["round"], a.get("grants", {}),
                                    total=a.get("total"))
        return trace

    # ----------------------------------------------------------- tabular
    def rows(self, key: Optional[str] = None) \
            -> List[Tuple[str, int, int, Optional[float],
                          Optional[float]]]:
        """``(key, round, rows, error, wall_seconds)`` tuples for simple
        terminal tables (examples/telemetry_dashboard.py)."""
        return [(p.key, p.round, p.rows, p.error, p.wall_seconds)
                for p in self.points
                if key is None or p.key == key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)
