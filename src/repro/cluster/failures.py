"""Node-failure modelling and injection.

Paper §3.4 motivates EARL's fault tolerance with the disk-failure study
of Schroeder & Gibson [26]: "over 3% of hard-disks fail per year, which
means that in a server farm with 1,000,000 storage devices, over 83 will
fail every day".  :func:`expected_daily_failures` reproduces that
arithmetic; :class:`FailureInjector` applies failures to a simulated
cluster so experiments can measure EARL's behaviour under data loss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cluster.cluster import Cluster

#: Annualized disk failure rate reported by Schroeder & Gibson (FAST'07),
#: as cited by the paper.
DISK_ANNUAL_FAILURE_RATE = 0.03


def expected_daily_failures(n_devices: int,
                            afr: float = DISK_ANNUAL_FAILURE_RATE) -> float:
    """Expected device failures per day for a fleet of ``n_devices``.

    With the paper's numbers (1e6 devices, 3 %/yr) this exceeds 83/day.
    """
    check_positive_int("n_devices", n_devices)
    check_fraction("afr", afr, inclusive_low=True)
    return n_devices * afr / 365.0


class FailureInjector:
    """Deterministic failure injection for a simulated cluster."""

    def __init__(self, cluster: "Cluster", *, seed: SeedLike = None) -> None:
        self._cluster = cluster
        self._rng = ensure_rng(seed)

    def fail_nodes(self, node_ids: Sequence[str]) -> List[str]:
        """Fail the named nodes; returns the ids actually failed."""
        failed = []
        for node_id in node_ids:
            self._cluster.fail_node(node_id)
            failed.append(node_id)
        return failed

    def fail_random_nodes(self, count: int) -> List[str]:
        """Fail ``count`` uniformly-chosen healthy nodes."""
        healthy = [n.node_id for n in self._cluster.nodes if n.alive]
        if count > len(healthy):
            raise ValueError(
                f"cannot fail {count} nodes; only {len(healthy)} healthy")
        chosen = self._rng.choice(len(healthy), size=count, replace=False)
        return self.fail_nodes([healthy[int(i)] for i in chosen])

    def fail_random_fraction(self, fraction: float) -> List[str]:
        """Fail ``fraction`` of the currently healthy nodes (rounded down)."""
        check_fraction("fraction", fraction, inclusive_low=True)
        healthy = sum(1 for n in self._cluster.nodes if n.alive)
        return self.fail_random_nodes(int(healthy * fraction))
