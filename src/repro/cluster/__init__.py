"""Simulated cluster substrate: machines, slots, failures, cost model."""

from repro.cluster.cluster import Cluster
from repro.cluster.costmodel import CATEGORIES, CostLedger, CostParameters
from repro.cluster.failures import (
    DISK_ANNUAL_FAILURE_RATE,
    FailureInjector,
    expected_daily_failures,
)
from repro.cluster.node import ClusterNode
from repro.cluster.scheduler import Schedule, ScheduledTask, schedule_tasks

__all__ = [
    "Cluster",
    "ClusterNode",
    "CostLedger",
    "CostParameters",
    "CATEGORIES",
    "Schedule",
    "ScheduledTask",
    "schedule_tasks",
    "FailureInjector",
    "expected_daily_failures",
    "DISK_ANNUAL_FAILURE_RATE",
]
