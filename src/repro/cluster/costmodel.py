"""Simulated-time cost model for the cluster substrate.

The paper's evaluation (Figures 5, 6, 7, 9, 10) reports *processing time*
on a 5-node Hadoop cluster.  Running a Python in-process MapReduce engine
and reporting its wall-clock time would say nothing about that cluster, so
this module provides a deterministic cost model instead: every simulated
component (HDFS reads, shuffles, user functions, task start-up) charges
simulated seconds to a :class:`CostLedger`.  The scheduler then combines
per-task ledgers into a job makespan.

The default constants approximate the paper's testbed (commodity disks at
~100 MB/s, 1 GbE network, ~1 s JVM task start-up, a few seconds of job
set-up).  Only *ratios* matter for reproducing the paper's curves — e.g.
full-scan I/O versus a 1 % sample, or job-restart overhead versus reuse of
a running mapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.obs.metrics import REGISTRY as _METRICS
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CostParameters:
    """Constants of the simulated cluster hardware.

    Attributes
    ----------
    disk_bandwidth:
        Sequential read/write bandwidth of one DataNode disk, bytes/second.
    disk_seek_seconds:
        Cost of one random seek (pre-map sampling pays one per sampled
        line, a full scan pays one per block).
    network_bandwidth:
        Point-to-point bandwidth between nodes, bytes/second (shuffle and
        replication traffic).
    cpu_seconds_per_record:
        Baseline cost of pushing one record through a map or reduce
        function.  Jobs can scale this with a per-job ``cpu_factor``.
    task_startup_seconds:
        Cost of launching one task attempt (JVM start in Hadoop).  EARL
        avoids re-paying this by keeping mappers alive across iterations.
    job_setup_seconds:
        Fixed per-job scheduling/submission overhead.
    """

    disk_bandwidth: float = 100e6
    disk_seek_seconds: float = 0.01
    network_bandwidth: float = 125e6
    cpu_seconds_per_record: float = 2e-7
    task_startup_seconds: float = 1.0
    job_setup_seconds: float = 3.0

    def __post_init__(self) -> None:
        check_positive("disk_bandwidth", self.disk_bandwidth)
        check_positive("network_bandwidth", self.network_bandwidth)
        check_positive("cpu_seconds_per_record", self.cpu_seconds_per_record)
        if self.disk_seek_seconds < 0 or self.task_startup_seconds < 0 \
                or self.job_setup_seconds < 0:
            raise ValueError("overhead constants cannot be negative")


#: Ledger categories, used for breakdown reporting in the benchmarks.
CATEGORIES = ("disk_read", "disk_write", "disk_seek", "network", "cpu", "startup")


@dataclass
class CostLedger:
    """Accumulator of simulated seconds, broken down by category.

    One ledger per simulated task; the scheduler sums a task's ledger into
    its duration, and a job-level ledger tracks driver-side costs.
    """

    params: CostParameters = field(default_factory=CostParameters)
    _seconds: Dict[str, float] = field(default_factory=dict)
    _published: Dict[str, float] = field(default_factory=dict, repr=False,
                                         compare=False)

    def __post_init__(self) -> None:
        for cat in CATEGORIES:
            self._seconds.setdefault(cat, 0.0)

    # -- charging ----------------------------------------------------------
    def charge_disk_read(self, nbytes: float) -> None:
        """Charge a sequential read of ``nbytes`` (logical) bytes."""
        self._charge("disk_read", nbytes / self.params.disk_bandwidth)

    def charge_disk_write(self, nbytes: float) -> None:
        self._charge("disk_write", nbytes / self.params.disk_bandwidth)

    def charge_seeks(self, count: int = 1) -> None:
        """Charge ``count`` random disk seeks."""
        if count < 0:
            raise ValueError("seek count cannot be negative")
        self._charge("disk_seek", count * self.params.disk_seek_seconds)

    def charge_probe_sequence(self, seek_counts, nbytes_seq) -> None:
        """Charge a sequence of random probes: per probe, ``seek_counts[i]``
        seeks then ``nbytes_seq[i]`` read bytes.

        Exactly equivalent to calling :meth:`charge_seeks` /
        :meth:`charge_disk_read` once per probe — the accumulation is
        the same left-to-right float addition, so totals are
        bit-identical — but without per-probe method dispatch (the
        batched samplers charge tens of thousands of probes per round).
        """
        seek_cost = self.params.disk_seek_seconds
        bandwidth = self.params.disk_bandwidth
        seconds = self._seconds
        seeks = seconds["disk_seek"]
        reads = seconds["disk_read"]
        for count, nbytes in zip(seek_counts, nbytes_seq):
            if count < 0 or nbytes < 0:
                raise ValueError("cannot charge negative time")
            seeks += count * seek_cost
            reads += nbytes / bandwidth
        seconds["disk_seek"] = seeks
        seconds["disk_read"] = reads

    def charge_network(self, nbytes: float) -> None:
        """Charge a transfer of ``nbytes`` between two nodes."""
        self._charge("network", nbytes / self.params.network_bandwidth)

    def charge_cpu_records(self, records: float, cpu_factor: float = 1.0) -> None:
        """Charge CPU for processing ``records`` records.

        ``cpu_factor`` scales the baseline per-record cost; heavy analytics
        (K-Means distance computations) use factors > 1.
        """
        if records < 0:
            raise ValueError("record count cannot be negative")
        self._charge("cpu", records * self.params.cpu_seconds_per_record * cpu_factor)

    def charge_cpu_seconds(self, seconds: float) -> None:
        self._charge("cpu", seconds)

    def charge_task_startup(self, tasks: int = 1) -> None:
        self._charge("startup", tasks * self.params.task_startup_seconds)

    def charge_backoff(self, seconds: float) -> None:
        """Charge a simulated idle wait (task-retry backoff).

        Booked under ``startup`` — like a task launch, it is scheduling
        overhead during which the slot does no useful work."""
        self._charge("startup", seconds)

    def charge_job_setup(self) -> None:
        self._charge("startup", self.params.job_setup_seconds)

    def _charge(self, category: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._seconds[category] += seconds

    # -- reading -----------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Total simulated seconds across all categories."""
        return sum(self._seconds.values())

    def seconds(self, category: str) -> float:
        """Simulated seconds charged to one category."""
        if category not in self._seconds:
            raise KeyError(f"unknown cost category {category!r}")
        return self._seconds[category]

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category accounting."""
        return dict(self._seconds)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's charges into this one (serial composition)."""
        for cat, secs in other._seconds.items():
            self._seconds[cat] = self._seconds.get(cat, 0.0) + secs

    def spawn(self) -> "CostLedger":
        """New empty ledger sharing this ledger's cost parameters."""
        return CostLedger(params=self.params)

    def reset(self) -> None:
        for cat in self._seconds:
            self._seconds[cat] = 0.0
        self._published.clear()

    # -- telemetry ---------------------------------------------------------
    def publish(self, labels: Optional[Mapping[str, object]] = None) -> None:
        """Publish this ledger's charges into the metrics registry.

        Only the delta since the previous :meth:`publish` is pushed, so
        the registry's ``repro_sim_cost_seconds_total`` series reconcile
        exactly with ledger totals however often callers publish.  A
        single attribute check when telemetry is disabled.
        """
        if not _METRICS.enabled:
            return
        for cat, secs in self._seconds.items():
            delta = secs - self._published.get(cat, 0.0)
            if delta > 0:
                _publish_cost(cat, delta, labels)
                self._published[cat] = secs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in self._seconds.items() if v)
        return f"CostLedger({parts or 'empty'})"


def _publish_cost(category: str, seconds: float,
                  labels: Optional[Mapping[str, object]] = None) -> None:
    series = {"category": category}
    if labels:
        series.update({str(k): v for k, v in labels.items()})
    _METRICS.counter(
        "repro_sim_cost_seconds_total", labels=series,
        help="simulated cluster seconds, by cost-model category").inc(seconds)


def publish_cost_breakdown(breakdown: Mapping[str, float],
                           labels: Optional[Mapping[str, object]] = None) \
        -> None:
    """Publish a merged per-category breakdown (e.g. a ``JobResult``'s)
    into the registry.  No-op when telemetry is disabled."""
    if not _METRICS.enabled:
        return
    for cat, secs in breakdown.items():
        if secs > 0:
            _publish_cost(cat, secs, labels)
