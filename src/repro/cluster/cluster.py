"""The simulated cluster: machines + HDFS + cost model.

This is the substrate the MapReduce engine runs on.  It mirrors the
paper's testbed (§5): a small cluster of commodity machines, each hosting
an HDFS DataNode and a handful of task slots.  All time is simulated via
:class:`~repro.cluster.costmodel.CostLedger`; all randomness is owned by
an explicit generator for reproducibility.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.costmodel import CostLedger, CostParameters
from repro.cluster.node import ClusterNode
from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE
from repro.hdfs.filesystem import HDFS
from repro.util.rng import SeedLike, ensure_rng, spawn_child
from repro.util.validation import check_positive_int


class Cluster:
    """A fixed set of simulated machines with co-located storage/compute.

    Parameters
    ----------
    n_nodes:
        Machine count (paper: 5).
    map_slots_per_node, reduce_slots_per_node:
        Task slots per machine (Hadoop 0.20 defaults: 2 and 1).
    block_size:
        HDFS block size in actual bytes.
    replication:
        HDFS replication factor (capped at ``n_nodes``).
    cost_params:
        Hardware constants for the simulated-time cost model.
    seed:
        Master seed; child streams are derived for HDFS placement etc.
    """

    def __init__(self, n_nodes: int = 5, *,
                 map_slots_per_node: int = 2,
                 reduce_slots_per_node: int = 1,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = 3,
                 cost_params: Optional[CostParameters] = None,
                 seed: SeedLike = None) -> None:
        check_positive_int("n_nodes", n_nodes)
        self._rng = ensure_rng(seed)
        hdfs_rng, self.task_rng = spawn_child(self._rng, 2)
        self.cost_params = cost_params or CostParameters()
        self.hdfs = HDFS(n_datanodes=n_nodes, block_size=block_size,
                         replication=replication, seed=hdfs_rng)
        self.nodes: List[ClusterNode] = [
            ClusterNode(node_id=f"node-{i}",
                        map_slots=map_slots_per_node,
                        reduce_slots=reduce_slots_per_node)
            for i in range(n_nodes)
        ]
        self._node_to_datanode: Dict[str, str] = {
            f"node-{i}": f"datanode-{i}" for i in range(n_nodes)
        }
        #: Duration multipliers of degraded-but-alive machines (chaos
        #: injection); empty means every node runs at full speed.
        self.slow_factors: Dict[str, float] = {}

    # ----------------------------------------------------------------- slots
    @property
    def healthy_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.alive]

    @property
    def total_map_slots(self) -> int:
        """Map slots across healthy machines (0 if the cluster is dead)."""
        return sum(n.map_slots for n in self.healthy_nodes)

    @property
    def total_reduce_slots(self) -> int:
        return sum(n.reduce_slots for n in self.healthy_nodes)

    # --------------------------------------------------------------- failures
    def fail_node(self, node_id: str) -> None:
        """Fail a machine: compute slots *and* its DataNode go away."""
        node = self._find(node_id)
        node.fail()
        self.hdfs.fail_datanode(self._node_to_datanode[node_id])

    def recover_node(self, node_id: str) -> None:
        node = self._find(node_id)
        node.recover()
        self.hdfs.recover_datanode(self._node_to_datanode[node_id])
        self.slow_factors.pop(node_id, None)

    def set_slow_node(self, node_id: str, factor: float) -> None:
        """Degrade a machine: its tasks take ``factor`` × as long.

        Models a failing-but-alive node (the straggler case speculative
        execution exists for); ``factor`` must be >= 1."""
        self._find(node_id)  # validate
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1")
        if factor == 1.0:
            self.slow_factors.pop(node_id, None)
        else:
            self.slow_factors[node_id] = factor

    def clear_slow_nodes(self) -> None:
        self.slow_factors.clear()

    def _find(self, node_id: str) -> ClusterNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"unknown node {node_id!r}")

    # ------------------------------------------------------------------ costs
    def new_ledger(self) -> CostLedger:
        """Fresh ledger bound to this cluster's hardware constants."""
        return CostLedger(params=self.cost_params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        healthy = len(self.healthy_nodes)
        return (f"Cluster({healthy}/{len(self.nodes)} nodes healthy, "
                f"{self.total_map_slots} map slots, "
                f"{self.total_reduce_slots} reduce slots)")
