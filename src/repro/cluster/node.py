"""Compute-node abstraction for the simulated cluster.

Each simulated machine hosts a DataNode (storage) and a TaskTracker-like
set of map/reduce slots (compute).  The paper's testbed was 5 such
machines (§5); failing a node removes both its slots and its replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int


@dataclass
class ClusterNode:
    """One simulated machine: slots + health."""

    node_id: str
    map_slots: int = 2
    reduce_slots: int = 1
    alive: bool = True

    def __post_init__(self) -> None:
        check_positive_int("map_slots", self.map_slots)
        check_positive_int("reduce_slots", self.reduce_slots)

    def fail(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True
