"""Slot scheduler: turns per-task simulated durations into a job makespan.

Hadoop 0.20 runs tasks in FIFO order over a fixed pool of slots; with
``t`` tasks and ``m`` slots the job executes in ⌈t/m⌉ "waves".  This
module reproduces that with greedy list scheduling: each task is placed
on the earliest-available slot.  The resulting makespan is what the
benchmarks report as the parallel execution time of a task phase.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ScheduledTask:
    """Placement decision for one task."""

    task_index: int
    slot: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Schedule:
    """Outcome of scheduling one task phase."""

    tasks: List[ScheduledTask]
    makespan: float
    slots: int

    @property
    def waves(self) -> int:
        """Number of scheduling waves (⌈tasks/slots⌉ for uniform tasks)."""
        if not self.tasks:
            return 0
        return -(-len(self.tasks) // self.slots)


def schedule_tasks(durations: Sequence[float], slots: int) -> Schedule:
    """Greedy FIFO list-scheduling of ``durations`` onto ``slots`` slots.

    Tasks are launched in index order, each on the slot that frees up
    first — the behaviour of Hadoop's FIFO scheduler for a single job.
    """
    check_positive_int("slots", slots)
    for d in durations:
        if d < 0:
            raise ValueError("task durations cannot be negative")
    heap = [(0.0, slot) for slot in range(slots)]
    heapq.heapify(heap)
    placed: List[ScheduledTask] = []
    makespan = 0.0
    for i, duration in enumerate(durations):
        free_at, slot = heapq.heappop(heap)
        end = free_at + duration
        placed.append(ScheduledTask(task_index=i, slot=slot,
                                    start=free_at, end=end))
        makespan = max(makespan, end)
        heapq.heappush(heap, (end, slot))
    return Schedule(tasks=placed, makespan=makespan, slots=slots)
