"""Exception types raised by the simulated HDFS."""

from __future__ import annotations


class HdfsError(Exception):
    """Base class for all simulated-HDFS failures."""


class FileNotFoundInHdfs(HdfsError):
    """The requested path does not exist in the namespace."""


class FileAlreadyExists(HdfsError):
    """Attempt to create a path that already exists (without overwrite)."""


class BlockUnavailableError(HdfsError):
    """Every replica of a required block lives on a failed DataNode.

    EARL's fault-tolerance story (paper §3.4) hinges on catching exactly
    this condition and estimating the result from surviving data instead
    of failing the job.
    """


class ReplicationError(HdfsError):
    """Not enough healthy DataNodes to satisfy the replication factor."""
