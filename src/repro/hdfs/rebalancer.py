"""HDFS data rebalancer.

The paper leans on the fact that "Hadoop employs a data re-balancer which
distributes HDFS data uniformly across the DataNodes" (§1) — uniform
placement is what makes key-based sampling cheap.  This module provides
that service for the simulated file system: it moves block replicas from
overloaded to underloaded healthy nodes until per-node block counts
differ by at most one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS


def replica_counts(fs: HDFS) -> Dict[str, int]:
    """Number of block replicas hosted by each healthy DataNode."""
    return {dn.node_id: len(tuple(dn.block_ids()))
            for dn in fs.healthy_datanodes()}


def imbalance(fs: HDFS) -> int:
    """Max-minus-min replica count across healthy nodes (0 == balanced)."""
    counts = list(replica_counts(fs).values())
    if not counts:
        return 0
    return max(counts) - min(counts)


def rebalance(fs: HDFS, *, ledger: Optional[CostLedger] = None
              ) -> List[Tuple[int, str, str]]:
    """Move replicas until healthy nodes are balanced to within one block.

    Returns the list of moves performed as ``(block_id, src, dst)``.
    Network cost for the moved bytes is charged to ``ledger`` when given.
    A replica is never moved to a node that already holds a copy of the
    same block (that would silently reduce fault tolerance).
    """
    moves: List[Tuple[int, str, str]] = []
    # Index blocks by id for replica bookkeeping on the NameNode side.
    block_index = {}
    for path in fs.list_files():
        for block in fs.namenode.get(path).blocks:
            block_index[block.block_id] = block

    while True:
        counts = replica_counts(fs)
        if not counts or max(counts.values()) - min(counts.values()) <= 1:
            return moves
        src = max(counts, key=lambda nid: counts[nid])
        dst_order = sorted(counts, key=lambda nid: counts[nid])
        src_node = fs.datanodes[src]
        moved = False
        for block_id in list(src_node.block_ids()):
            block = block_index.get(block_id)
            if block is None:
                continue
            for dst in dst_order:
                if dst == src or counts[dst] >= counts[src] - 1:
                    continue
                dst_node = fs.datanodes[dst]
                if dst_node.has_block(block_id):
                    continue
                data = src_node.read(block_id)
                dst_node.store(block_id, data)
                src_node.drop(block_id)
                block.replicas = [dst if nid == src else nid
                                  for nid in block.replicas]
                if ledger is not None:
                    ledger.charge_network(len(data))
                moves.append((block_id, src, dst))
                moved = True
                break
            if moved:
                break
        if not moved:
            # Every candidate move is blocked by the replica-collision rule.
            return moves
