"""Simulated NameNode: the HDFS metadata service.

Keeps the file namespace (path → file metadata → block list) separate
from application data, exactly as HDFS/GFS do (paper §2.1).  The
``logical_scale`` attribute of :class:`FileMeta` is a reproduction
device: it lets a laptop-sized file *stand in* for a paper-sized one
(e.g. 100 GB) — splits and cost accounting operate on logical bytes
while the actual stored bytes stay small.  See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.hdfs.blocks import Block
from repro.hdfs.errors import FileAlreadyExists, FileNotFoundInHdfs


@dataclass
class FileMeta:
    """Namespace entry for one file.

    Attributes
    ----------
    path:
        Absolute path (``/`` separated, no trailing slash).
    size:
        Actual stored bytes.
    blocks:
        Block metadata in file order.
    logical_scale:
        Multiplier applied to byte counts for cost accounting and split
        computation; ``1.0`` means the file is what it claims to be.
    """

    path: str
    size: int = 0
    blocks: List[Block] = field(default_factory=list)
    logical_scale: float = 1.0

    @property
    def logical_size(self) -> int:
        """Size the simulated cluster *believes* this file has."""
        return int(round(self.size * self.logical_scale))


class NameNode:
    """Metadata-only view of the simulated file system."""

    def __init__(self) -> None:
        self._files: Dict[str, FileMeta] = {}
        self._next_block_id = 0

    # -- namespace -----------------------------------------------------------
    @staticmethod
    def normalize(path: str) -> str:
        if not path or not path.startswith("/"):
            raise ValueError(f"HDFS paths must be absolute, got {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") if path != "/" else path

    def create_file(self, path: str, *, logical_scale: float = 1.0,
                    overwrite: bool = False) -> FileMeta:
        path = self.normalize(path)
        if path in self._files and not overwrite:
            raise FileAlreadyExists(path)
        if logical_scale < 1.0:
            raise ValueError("logical_scale must be >= 1.0")
        meta = FileMeta(path=path, logical_scale=logical_scale)
        self._files[path] = meta
        return meta

    def get(self, path: str) -> FileMeta:
        path = self.normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInHdfs(path) from None

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._files

    def delete(self, path: str) -> FileMeta:
        path = self.normalize(path)
        if path not in self._files:
            raise FileNotFoundInHdfs(path)
        return self._files.pop(path)

    def list_files(self, prefix: str = "/") -> List[str]:
        """All paths under ``prefix``, sorted.

        The mapper↔reducer feedback protocol (paper §3.3) relies on listing
        the per-job error files written by reducers, so directory listing
        is part of the substrate contract.
        """
        prefix = self.normalize(prefix)
        if prefix != "/" and not prefix.endswith("/"):
            prefix = prefix + "/"
        if prefix == "/":
            return sorted(self._files)
        return sorted(p for p in self._files
                      if p.startswith(prefix) or p == prefix.rstrip("/"))

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def __len__(self) -> int:
        return len(self._files)

    # -- block management ------------------------------------------------------
    def allocate_block(self, meta: FileMeta, length: int) -> Block:
        """Append a new block record to ``meta`` and return it."""
        block = Block(block_id=self._next_block_id, path=meta.path,
                      offset=meta.size, length=length)
        self._next_block_id += 1
        meta.blocks.append(block)
        meta.size += length
        return block

    def blocks_for_range(self, meta: FileMeta, start: int, end: int) -> List[Block]:
        """Blocks overlapping the actual-byte range ``[start, end)``."""
        if start < 0 or end > meta.size or start > end:
            raise ValueError(
                f"range [{start}, {end}) outside file of size {meta.size}")
        return [b for b in meta.blocks if b.offset < end and b.end > start]
