"""Simulated DataNode: stores block bytes and a health flag.

Application data in HDFS lives on DataNodes; the NameNode only keeps
metadata (paper §2.1).  A DataNode can be *failed* by the cluster's
failure injector, after which every block whose replicas are all on
failed nodes becomes unavailable — the condition EARL's fault-tolerance
mode (§3.4) must survive.
"""

from __future__ import annotations

from typing import Dict, Iterable


class DataNode:
    """In-memory container for block bytes on one simulated machine."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._blocks: Dict[int, bytes] = {}
        self._alive = True

    # -- health ------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Mark the node as failed.  Stored bytes become unreachable."""
        self._alive = False

    def recover(self) -> None:
        """Bring the node back (data intact, mirroring a rack power cycle)."""
        self._alive = True

    # -- block storage -------------------------------------------------------
    def store(self, block_id: int, data: bytes) -> None:
        if not self._alive:
            raise RuntimeError(f"cannot store on failed DataNode {self.node_id}")
        self._blocks[block_id] = data

    def has_block(self, block_id: int) -> bool:
        """Whether this node holds a *readable* copy of ``block_id``."""
        return self._alive and block_id in self._blocks

    def read(self, block_id: int) -> bytes:
        if not self._alive:
            raise RuntimeError(f"read from failed DataNode {self.node_id}")
        return self._blocks[block_id]

    def drop(self, block_id: int) -> None:
        """Remove a replica (used by the rebalancer)."""
        self._blocks.pop(block_id, None)

    def block_ids(self) -> Iterable[int]:
        return tuple(self._blocks.keys())

    @property
    def used_bytes(self) -> int:
        """Total bytes stored on this node (for rebalancing decisions)."""
        return sum(len(b) for b in self._blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "FAILED"
        return f"DataNode({self.node_id}, {len(self._blocks)} blocks, {state})"
