"""Block-level primitives of the simulated HDFS.

HDFS splits every file into fixed-size blocks (64 MB by default in the
Hadoop version the paper used) and replicates each block across
DataNodes.  :class:`Block` is pure metadata; the bytes live on
:class:`~repro.hdfs.datanode.DataNode` instances, keyed by block id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

#: Hadoop 0.20's default block size, kept as the library default.
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass
class Block:
    """Metadata for one HDFS block.

    Attributes
    ----------
    block_id:
        Globally unique id assigned by the NameNode.
    path:
        File this block belongs to.
    offset:
        Byte offset of the block within the file (actual bytes).
    length:
        Number of actual bytes in the block (the last block of a file is
        usually short).
    replicas:
        Ids of the DataNodes currently holding a copy.
    """

    block_id: int
    path: str
    offset: int
    length: int
    replicas: List[str] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Byte offset one past the last byte of this block."""
        return self.offset + self.length

    def covers(self, position: int) -> bool:
        """Whether ``position`` (file offset) falls inside this block."""
        return self.offset <= position < self.end
