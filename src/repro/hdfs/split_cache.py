"""Columnar newline-index cache for input splits (the ingest data plane).

EARL's response-time advantage comes from touching only the sample, yet
the scalar ingest path pays Python-level, record-at-a-time costs: the
record reader scans for newlines on every read and pre-map sampling
backtracks byte-by-byte per probe.  Following M3R (cache deserialized
inputs across the jobs of an iterative driver) and Shark (columnar
in-memory layout makes re-scans cheap), this module indexes a split's
bytes **once** — ``np.frombuffer``/``np.flatnonzero`` over the raw
buffer — into columnar arrays:

* ``starts``      — line-start offsets (absolute file coordinates),
* ``lines``       — the decoded text column,
* ``seek_counts`` / ``scaled_bytes`` — per-line *simulated* probe
  charges, precomputed so cached probes charge the
  :class:`~repro.cluster.costmodel.CostLedger` bit-for-bit what the
  scalar path charges.

The cache changes **where the wall-clock goes, never what is simulated**:
ledger charges, sampled record sets and estimates are byte-identical
with the cache on or off (the ``cached=False`` toggle on the record
reader and samplers preserves the scalar reference, mirroring PR 3's
``vectorized=`` toggle).  A :class:`SplitIndexCache` hangs off every
:class:`~repro.hdfs.filesystem.HDFS` instance, is invalidated when a
path is rewritten or deleted, survives across the expansion iterations
of the iterative drivers (zero re-parse of already-cached splits), and
is dropped from pickles so a process-pool worker builds its own copy
once per worker — not once per task — via the broadcast-once fs.

Availability contract: an index is only served while every block of its
region is still readable; after a DataNode failure :meth:`acquire`
returns ``None`` and callers fall back to the scalar path, so failure
behaviour (including mid-read ``BlockUnavailableError``) is exactly the
scalar path's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.hdfs.errors import BlockUnavailableError
from repro.hdfs.splits import InputSplit

#: Window size used when scanning for line boundaries at build time
#: (same constant as the scalar reader's backtracking).
_SCAN_CHUNK = 4096
_NEWLINE = 10  # ord("\n")


@dataclass
class CacheStats:
    """Physical-plane counters of one :class:`SplitIndexCache`.

    These count *wall-clock* work (index builds, cache hits), not
    simulated time — the integration tests use them to assert that
    expansion iteration >= 2 performs zero re-parse of already-cached
    splits.
    """

    materializations: int = 0
    hits: int = 0
    fallbacks: int = 0
    invalidations: int = 0
    block_materializations: int = 0
    block_hits: int = 0


class LineColumn:
    """Lazily decoded text column of one :class:`SplitIndex`.

    Behaves like the eager ``List[Optional[str]]`` it replaces —
    indexing, slicing, iteration, ``len()``, equality — but holds the
    split's raw bytes and decodes UTF-8 per entry on first access.  A
    pre-map sampler probing 50k entries of a 1M-line split decodes 50k
    short slices instead of the whole region (index builds used to be
    the 1M-row hot spot: ``str.split`` over the full body dominated the
    build, and at n=1e6 the build is *not* amortized away by the probe
    volume the way it is at smaller n).  Bulk consumers — full scans,
    iteration, comparison — still get the one-pass decode-and-split via
    :meth:`materialize`, after which the raw buffer is dropped.

    Entry 0 of a split that starts mid-line is always ``None`` (the
    prefix belongs to the previous split and may cut a multi-byte
    character).
    """

    __slots__ = ("_raw", "_text_starts", "_text_ends", "_partial_first",
                 "_cache", "_full")

    def __init__(self, raw: bytes, text_starts: np.ndarray,
                 text_ends: np.ndarray, partial_first: bool) -> None:
        self._raw = raw
        #: Region-relative ``[text_start, text_end)`` per entry — the
        #: entry's text without its terminating newline.
        self._text_starts = text_starts
        self._text_ends = text_ends
        self._partial_first = partial_first
        self._cache: List[Optional[str]] = [None] * len(text_starts)
        self._full = False

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, entry):
        if isinstance(entry, slice):
            return self.materialize()[entry]
        if entry < 0:
            entry += len(self._cache)
        if entry == 0 and self._partial_first:
            return None
        line = self._cache[entry]
        if line is None and not self._full:
            line = self._raw[int(self._text_starts[entry]):
                             int(self._text_ends[entry])].decode("utf-8")
            self._cache[entry] = line
        return line

    def __iter__(self):
        return iter(self.materialize())

    def __eq__(self, other):
        if isinstance(other, LineColumn):
            other = other.materialize()
        if isinstance(other, list):
            return self.materialize() == other
        return NotImplemented

    __hash__ = None

    def take(self, entries: np.ndarray) -> List[str]:
        """Decode a batch of entries in one pass (no per-entry dispatch).

        Callers pass entries that are never the partial entry 0 — the
        pre-map sampler only takes entries its ``acceptable`` mask
        admits, and that mask excludes the partial prefix.
        """
        idx = entries.tolist()
        if self._full:
            cache = self._cache
            return [cache[e] for e in idx]
        raw = self._raw
        return [raw[s:e].decode("utf-8")
                for s, e in zip(self._text_starts[entries].tolist(),
                                self._text_ends[entries].tolist())]

    def materialize(self) -> List[Optional[str]]:
        """Decode the whole column in one pass (decode + split, the old
        eager build) and return it as a plain list."""
        if not self._full:
            n = len(self._cache)
            first = 1 if self._partial_first else 0
            if n > first:
                body = self._raw[int(self._text_starts[first]):] \
                    .decode("utf-8")
                pieces = body.split("\n")
                # A region ending in "\n" yields a phantom empty final
                # piece; slicing to the real entries drops it.
                self._cache[first:] = pieces[:n - first]
            if self._partial_first and n:
                self._cache[0] = None
            self._raw = b""  # decoded: the raw buffer is no longer needed
            self._full = True
        return self._cache


@dataclass
class SplitIndex:
    """Columnar view of one split's region ``[split.start, data_end)``.

    ``data_end`` is the scalar reader's over-read bound: one byte past
    the newline that completes the line containing the split end (or
    EOF).  Entry 0 starts at ``split.start``; when the split begins
    mid-line its true line start is ``prefix_start`` (< ``split.start``)
    and entry 0's text is ``None`` — such probes are ownership misses,
    so the partial text is never needed (and, split boundaries being
    byte offsets, might not even be valid UTF-8 to decode).
    """

    path: str
    split_start: int
    split_end: int
    end_limit: int
    data_end: int
    file_size: int
    logical_scale: float
    prefix_start: int
    #: Absolute line-start offset per entry (entry 0 == ``split_start``).
    starts: np.ndarray
    #: One past each entry's terminating newline (``data_end`` for an
    #: unterminated tail).
    ends: np.ndarray
    #: Lazily decoded text per entry (``None`` for a partial entry 0).
    lines: LineColumn
    #: Simulated random-probe seek count per entry:
    #: ``1 + max(0, blocks_spanned - 1)`` over ``[charge_start, end)``.
    seek_counts: np.ndarray
    #: Simulated probe read volume per entry:
    #: ``(end - charge_start) * logical_scale``.
    scaled_bytes: np.ndarray
    #: Entries a pre-map probe may accept: line start owned by the
    #: split and text non-empty.
    acceptable: np.ndarray
    #: Index of the first entry ``read_records`` yields (0 when the
    #: split starts at byte 0, else 1 — Hadoop's skip-first-line rule).
    first_owned: int
    #: Lazily built ``(offset, line)`` pairs for cached full scans.
    _owned_pairs: Optional[List[Tuple[int, str]]] = field(
        default=None, repr=False)

    # ------------------------------------------------------------- full scan
    @property
    def scan_scaled_bytes(self) -> float:
        """Simulated volume of one full scan of the region — what the
        scalar ``read_records`` charges for its single ``read_range``."""
        return (self.data_end - self.split_start) * self.logical_scale

    def owned_records(self) -> List[Tuple[int, str]]:
        """The ``(byte_offset, line)`` records ``read_records`` yields.

        Built once, then served as-is: repeated scans of a cached split
        (every EARL expansion iteration re-reads its splits) cost a list
        iteration instead of a newline scan plus per-line decode.
        """
        if self._owned_pairs is None:
            starts = self.starts
            lines = self.lines.materialize()
            keep = []
            for i in range(self.first_owned, len(starts)):
                start = int(starts[i])
                if start > self.end_limit:
                    break
                keep.append((start, lines[i]))
            self._owned_pairs = keep
        return self._owned_pairs

    # ---------------------------------------------------------- random probe
    def entry_of(self, position: int) -> int:
        """Entry index of the line containing ``position`` (which must
        lie inside ``[split_start, data_end)``)."""
        return int(np.searchsorted(self.starts, position, side="right")) - 1

    def entries_of(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`entry_of` for a batch of probe offsets."""
        return np.searchsorted(self.starts, positions, side="right") - 1

    def charge_probe(self, ledger: Optional[CostLedger], entry: int) -> None:
        """Charge one random probe of ``entry`` exactly as the scalar
        ``line_at`` does: seeks first, then the scaled line volume."""
        if ledger is not None:
            ledger.charge_seeks(int(self.seek_counts[entry]))
            ledger.charge_disk_read(float(self.scaled_bytes[entry]))


def _find_forward_newline(fs, path: str, position: int, size: int) -> int:
    """First byte offset after the line containing ``position - 1``
    (the scalar reader's ``_find_line_end``, uncharged)."""
    pos = position
    while pos < size:
        chunk_end = min(pos + _SCAN_CHUNK, size)
        chunk = fs.read_range(path, pos, chunk_end, ledger=None)
        nl = chunk.find(b"\n")
        if nl >= 0:
            return pos + nl + 1
        pos = chunk_end
    return size


def _find_backward_line_start(fs, path: str, position: int) -> int:
    """Start of the line containing ``position`` (the scalar reader's
    ``_find_line_start``, uncharged)."""
    pos = position
    while pos > 0:
        chunk_start = max(0, pos - _SCAN_CHUNK)
        chunk = fs.read_range(path, chunk_start, pos, ledger=None)
        nl = chunk.rfind(b"\n")
        if nl >= 0:
            return chunk_start + nl + 1
        pos = chunk_start
    return 0


def build_split_index(fs, split: InputSplit) -> SplitIndex:
    """Scan a split's region once and return its columnar index.

    All reads here are physical only (``ledger=None``): the simulated
    charges stay attached to the *operations* (scans, probes) so cached
    and scalar runs price identically.  Raises
    :class:`~repro.hdfs.errors.BlockUnavailableError` exactly where a
    scalar full read of the region would.
    """
    meta = fs.namenode.get(split.path)
    file_size = meta.size
    end_limit = min(split.end, file_size)
    data_end = _find_forward_newline(fs, split.path, end_limit, file_size)
    raw = fs.read_range(split.path, split.start, data_end, ledger=None)
    arr = np.frombuffer(raw, dtype=np.uint8)
    nl_rel = np.flatnonzero(arr == _NEWLINE)

    # Line starts: the region head plus every newline successor that is
    # still inside the region.
    succ = nl_rel + 1
    succ = succ[succ < len(raw)]
    starts = np.concatenate(([0], succ)).astype(np.int64) + split.start

    # Entry i is terminated by newline i (when it exists); the last
    # entry may be an unterminated tail ending at data_end == EOF.
    n = len(starts)
    ends = np.empty(n, dtype=np.int64)
    terminated = min(n, len(nl_rel))
    ends[:terminated] = nl_rel[:terminated] + 1 + split.start
    ends[terminated:] = data_end

    # Where does the line containing the region head actually begin?
    if split.start == 0:
        prefix_start = 0
    else:
        head = fs.read_range(split.path, split.start - 1, split.start,
                             ledger=None)
        prefix_start = split.start if head == b"\n" \
            else _find_backward_line_start(fs, split.path, split.start - 1)

    # Text spans per entry, region-relative and *undecoded*: the text
    # column decodes lazily (see :class:`LineColumn`), so building the
    # index costs the newline scan, not a full-region UTF-8 decode.
    # Entry 0 stays ``None`` when the region head is mid-line; a
    # mid-line head may cut a multi-byte character, and the scalar path
    # never decodes that prefix either.
    text_starts = starts - split.start
    text_ends = np.empty(n, dtype=np.int64)
    text_ends[:terminated] = nl_rel[:terminated]
    text_ends[terminated:] = len(raw)
    partial_first = bool(n) and prefix_start != split.start
    lines = LineColumn(raw, text_starts, text_ends, partial_first)

    # Simulated probe charges per entry, matching the scalar line_at's
    # read_range(start, end, sequential=False): the charged range starts
    # at the *line* start (prefix_start for a partial entry 0).
    charge_starts = starts.copy()
    if n and prefix_start != split.start:
        charge_starts[0] = prefix_start
    block_offsets = np.array([b.offset for b in meta.blocks], dtype=np.int64)
    lo = np.searchsorted(block_offsets, charge_starts, side="right") - 1
    hi = np.searchsorted(block_offsets, ends - 1, side="right") - 1
    seek_counts = 1 + np.maximum(0, hi - lo)
    scaled_bytes = (ends - charge_starts) * meta.logical_scale

    # A probe may accept an entry iff its line start is owned by the
    # split and its text is non-empty — both knowable from the spans
    # alone, without decoding anything.
    acceptable = (charge_starts >= split.start) & (text_ends > text_starts)

    return SplitIndex(
        path=split.path, split_start=split.start, split_end=split.end,
        end_limit=end_limit, data_end=data_end, file_size=file_size,
        logical_scale=meta.logical_scale, prefix_start=prefix_start,
        starts=starts, ends=ends, lines=lines, seek_counts=seek_counts,
        scaled_bytes=scaled_bytes, acceptable=acceptable,
        first_owned=0 if split.start == 0 else 1)


class SplitIndexCache:
    """Per-filesystem cache of :class:`SplitIndex` objects.

    Keyed by ``(path, split.start, split.length)``; entries live until
    the path is rewritten or deleted.  The cache is deliberately *not*
    pickled with its filesystem: a process-pool worker that receives the
    fs through the executor's broadcast plane builds its own indexes
    once per worker and reuses them across every task and wave it runs.
    """

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, int, int], SplitIndex] = {}
        self._block_lines: Dict[Tuple[str, int], List[str]] = {}
        #: Default-parser numeric columns per path (read-only arrays),
        #: so repeated whole-file ingests also skip the float parse.
        self._columns: Dict[str, np.ndarray] = {}
        #: Keyed ``(keys, values)`` column pairs per (path, delimiter)
        #: — the grouped-query ingest counterpart of ``_columns``.
        self._keyed: Dict[Tuple[str, str],
                          Tuple[np.ndarray, np.ndarray]] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------ split view
    def lookup(self, split: InputSplit) -> Optional[SplitIndex]:
        """The cached index for ``split``, if any (no build, no checks)."""
        return self._indexes.get((split.path, split.start, split.length))

    def acquire(self, fs, split: InputSplit) -> Optional[SplitIndex]:
        """Index for ``split``, building it on first touch.

        Returns ``None`` when the region cannot be served safely — some
        block of ``[prefix_start, data_end)`` is unreadable — in which
        case the caller must take the scalar path, whose behaviour under
        failures (partial probe success, mid-read errors) is the
        reference.
        """
        key = (split.path, split.start, split.length)
        index = self._indexes.get(key)
        if index is not None:
            if self._region_available(fs, index):
                self.stats.hits += 1
                return index
            self.stats.fallbacks += 1
            return None
        try:
            index = build_split_index(fs, split)
        except BlockUnavailableError:
            self.stats.fallbacks += 1
            return None
        self._indexes[key] = index
        self.stats.materializations += 1
        return index

    @staticmethod
    def _region_available(fs, index: SplitIndex) -> bool:
        """Whether every block the *scalar* path could touch is readable.

        The scalar reference scans line boundaries in ``_SCAN_CHUNK``
        windows, so its reads can overrun the region by up to one chunk
        on either side (a forward scan past ``data_end``, a backward
        scan below ``prefix_start``).  The availability window covers
        that overrun too: the cache is served only when the scalar path
        could not possibly have raised, and falls back — to the scalar
        path itself, hence byte-identically — otherwise.
        """
        meta = fs.namenode.get(index.path)
        if meta.size != index.file_size:
            return False  # path rewritten underneath the cache key
        lo = max(0, index.prefix_start - _SCAN_CHUNK - 1)
        hi = min(index.file_size, index.data_end + _SCAN_CHUNK)
        if lo >= hi:
            return True
        blocks = fs.namenode.blocks_for_range(meta, lo, hi)
        return all(fs.block_available(b) for b in blocks)

    # ------------------------------------------------------------ block view
    def block_lines(self, fs, path: str, block) -> Optional[List[str]]:
        """Decoded whole lines of one block, with the block sampler's
        edge rule (partial first/last lines dropped, empties dropped).

        Returns ``None`` when the block is unreadable — callers fall
        back to the scalar read, which raises where the reference does.
        """
        key = (path, block.block_id)
        cached = self._block_lines.get(key)
        if cached is not None:
            if fs.block_available(block):
                self.stats.block_hits += 1
                return cached
            self.stats.fallbacks += 1
            return None
        meta = fs.namenode.get(path)
        try:
            data = fs.read_range(path, block.offset, block.end, ledger=None)
        except BlockUnavailableError:
            self.stats.fallbacks += 1
            return None
        lines = trim_block_lines(data, block.offset, block.end, meta.size)
        self._block_lines[key] = lines
        self.stats.block_materializations += 1
        return lines

    # ----------------------------------------------------------- column view
    def column_lookup(self, path: str) -> Optional[np.ndarray]:
        """The cached default-parser numeric column of ``path``, if any."""
        return self._columns.get(path)

    def store_column(self, path: str, column: np.ndarray) -> None:
        """Cache a whole-file numeric column (kept read-only: it is
        handed out by reference on every later ingest)."""
        column.setflags(write=False)
        self._columns[path] = column

    def keyed_lookup(self, path: str, delimiter: str
                     ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The cached ``(keys, values)`` columns of ``path``, if any."""
        return self._keyed.get((path, delimiter))

    def store_keyed(self, path: str, delimiter: str, keys: np.ndarray,
                    values: np.ndarray) -> None:
        """Cache a whole-file keyed column pair (both read-only: they
        are handed out by reference on every later ingest)."""
        keys.setflags(write=False)
        values.setflags(write=False)
        self._keyed[(path, delimiter)] = (keys, values)

    # ---------------------------------------------------------- invalidation
    def invalidate(self, path: str) -> None:
        """Drop every cached view of ``path`` (called on write/delete)."""
        stale = [k for k in self._indexes if k[0] == path]
        stale_blocks = [k for k in self._block_lines if k[0] == path]
        stale_keyed = [k for k in self._keyed if k[0] == path]
        for k in stale:
            del self._indexes[k]
        for k in stale_blocks:
            del self._block_lines[k]
        for k in stale_keyed:
            del self._keyed[k]
        had_column = self._columns.pop(path, None) is not None
        if stale or stale_blocks or stale_keyed or had_column:
            self.stats.invalidations += 1

    def clear(self) -> None:
        self._indexes.clear()
        self._block_lines.clear()
        self._columns.clear()
        self._keyed.clear()

    def __len__(self) -> int:
        return len(self._indexes)


def trim_block_lines(data: bytes, offset: int, end: int,
                     file_size: int) -> List[str]:
    """Decode one block's bytes into its whole lines.

    The block sampler's edge rule, shared by the cached and the scalar
    path so the two can never drift apart: partial lines at block
    boundaries are dropped (a block sampler does not coordinate with
    its neighbours), as are empty lines.  Strict UTF-8, like the scalar
    whole-block read: a boundary that cuts a multi-byte character
    raises on both paths.
    """
    lines = data.decode("utf-8").split("\n")
    if offset != 0:
        lines = lines[1:]
    if end != file_size:
        lines = lines[:-1]
    return [line for line in lines if line]


def read_numeric_column(fs, path: str, *,
                        ledger: Optional[CostLedger] = None,
                        split_logical_bytes: Optional[int] = None,
                        parser: Optional[Callable[[str], float]] = None,
                        cached: bool = True) -> np.ndarray:
    """Materialize a newline-delimited file as one numeric column.

    The columnar ingest entry point for the in-memory engines
    (:func:`repro.core.bootstrap.bootstrap_file`,
    :meth:`repro.streaming.SessionManager.from_hdfs`): every split is
    read through the cached record reader, and for the default parser
    the finished float column itself is cached per path — a *second*
    ingest of the same file (another bootstrap, another session)
    neither decodes nor re-parses anything, it replays the cached
    column (M3R-style reuse).  The returned array is read-only when it
    comes from the cache.  Simulated cost is a full scan on *every*
    call either way, charged to ``ledger``.

    ``parser`` converts one line to a float (default: ``float`` itself,
    vectorized through numpy; custom parsers bypass the column cache).
    """
    from repro.hdfs.record_reader import LineRecordReader

    cache = getattr(fs, "split_cache", None) if cached else None
    splits = fs.get_splits(path, split_logical_bytes)
    hit = cache.column_lookup(path) \
        if cache is not None and parser is None else None
    if hit is not None:
        # Replay the scan's simulated charges (and its failure
        # behaviour — an unreadable region raises here exactly as the
        # uncached walk would) without rebuilding the column.
        for split in splits:
            reader = LineRecordReader(fs, split, ledger=ledger, cached=True)
            for _ in reader.read_records():
                pass
        return hit

    columns: List[np.ndarray] = []
    for split in splits:
        reader = LineRecordReader(fs, split, ledger=ledger, cached=cached)
        lines = [line for _, line in reader.read_records()]
        if not lines:
            continue
        if parser is None:
            columns.append(np.asarray(lines, dtype=float))
        else:
            columns.append(np.array([parser(line) for line in lines],
                                    dtype=float))
    column = np.concatenate(columns) if columns else np.empty(0, dtype=float)
    if cache is not None and parser is None:
        cache.store_column(path, column)
    return column


#: Key assigned to lines without a delimiter (bare numeric values) —
#: the same constant key :class:`~repro.mapreduce.ProjectionMapper`
#: routes such lines under, so the two ingest paths agree on grouping.
BARE_LINE_KEY = "all"


def read_keyed_column(fs, path: str, *,
                      delimiter: str = "\t",
                      ledger: Optional[CostLedger] = None,
                      split_logical_bytes: Optional[int] = None,
                      cached: bool = True
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize a ``key<TAB>value`` file as two aligned columns.

    The keyed ingest entry point for the grouped query engine
    (:meth:`repro.query.Query.from_hdfs`): every split is read through
    the cached record reader, each line is split on ``delimiter`` into
    ``(key, float(value))`` — a line with no delimiter parses as a bare
    value under :data:`BARE_LINE_KEY`, matching
    :class:`~repro.mapreduce.ProjectionMapper` — and the finished
    column pair is cached per ``(path, delimiter)``, so a second query
    over the same file replays the cached columns without decoding or
    parsing anything.  Returned arrays are read-only when they come
    from the cache.  Simulated cost is a full scan on *every* call
    either way, charged to ``ledger``.
    """
    from repro.hdfs.record_reader import LineRecordReader

    cache = getattr(fs, "split_cache", None) if cached else None
    splits = fs.get_splits(path, split_logical_bytes)
    hit = cache.keyed_lookup(path, delimiter) if cache is not None else None
    if hit is not None:
        # Replay the scan's simulated charges (and its failure
        # behaviour) without rebuilding the columns.
        for split in splits:
            reader = LineRecordReader(fs, split, ledger=ledger, cached=True)
            for _ in reader.read_records():
                pass
        return hit

    keys: List[str] = []
    values: List[str] = []
    for split in splits:
        reader = LineRecordReader(fs, split, ledger=ledger, cached=cached)
        for _, line in reader.read_records():
            key, sep, payload = line.partition(delimiter)
            if sep:
                keys.append(key)
                values.append(payload)
            else:
                keys.append(BARE_LINE_KEY)
                values.append(line)
    key_column = np.asarray(keys, dtype=object)
    value_column = (np.asarray(values, dtype=float) if values
                    else np.empty(0, dtype=float))
    if cache is not None:
        cache.store_keyed(path, delimiter, key_column, value_column)
    return key_column, value_column
