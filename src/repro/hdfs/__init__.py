"""Simulated HDFS substrate (NameNode, DataNodes, blocks, splits).

Reproduces the features of HDFS the paper's sampling layer relies on
(§2.1, §3.3): block partitioning, replication, logical input splits, a
line-oriented record reader with byte-offset backtracking, and a data
rebalancer.
"""

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.errors import (
    BlockUnavailableError,
    FileAlreadyExists,
    FileNotFoundInHdfs,
    HdfsError,
    ReplicationError,
)
from repro.hdfs.filesystem import HDFS
from repro.hdfs.namenode import FileMeta, NameNode
from repro.hdfs.record_reader import LineRecordReader
from repro.hdfs.rebalancer import imbalance, rebalance, replica_counts
from repro.hdfs.split_cache import (
    BARE_LINE_KEY,
    CacheStats,
    SplitIndex,
    SplitIndexCache,
    build_split_index,
    read_keyed_column,
    read_numeric_column,
)
from repro.hdfs.splits import InputSplit, compute_splits

__all__ = [
    "HDFS",
    "CacheStats",
    "SplitIndex",
    "SplitIndexCache",
    "build_split_index",
    "read_numeric_column",
    "read_keyed_column",
    "BARE_LINE_KEY",
    "Block",
    "DataNode",
    "NameNode",
    "FileMeta",
    "InputSplit",
    "LineRecordReader",
    "DEFAULT_BLOCK_SIZE",
    "compute_splits",
    "rebalance",
    "imbalance",
    "replica_counts",
    "HdfsError",
    "FileNotFoundInHdfs",
    "FileAlreadyExists",
    "BlockUnavailableError",
    "ReplicationError",
]
