"""Line-oriented record reading over the simulated HDFS.

Reproduces the two behaviours of Hadoop's ``LineRecordReader`` that the
paper's sampling algorithms rely on (§3.3, Algorithm 2):

* **Split-boundary convention** — a mapper whose split does not start at
  byte 0 skips the first (partial) line, and reads one line *past* its
  split end, so that every line of the file is processed exactly once
  even though splits cut lines arbitrarily.
* **Backtracking** — given an arbitrary byte position (pre-map sampling
  draws positions uniformly at random), back up to the beginning of the
  enclosing line before reading it.

Two physical implementations share those semantics.  The scalar path
scans for newlines on every call — the reference behaviour.  With
``cached=True`` (the default) the reader serves both the full scan and
the random probe from the filesystem's columnar
:class:`~repro.hdfs.split_cache.SplitIndexCache`: the split's bytes are
newline-indexed **once** and subsequent calls are array lookups.  The
simulated :class:`~repro.cluster.costmodel.CostLedger` charges are
byte-identical either way (the cache optimizes the simulator's wall
clock, never the simulated cluster), and the cached path silently falls
back to the scalar one whenever the split's region is not fully
readable, so failure behaviour is unchanged.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.split_cache import (
    _find_backward_line_start,
    _find_forward_newline,
)
from repro.hdfs.splits import InputSplit


class LineRecordReader:
    """Reads newline-delimited records from one input split.

    ``cached=False`` pins the scalar newline-scanning reference
    implementation (the equivalence tests run both and compare).
    """

    def __init__(self, fs: HDFS, split: InputSplit, *,
                 ledger: Optional[CostLedger] = None,
                 cached: bool = True) -> None:
        self._fs = fs
        self._split = split
        self._ledger = ledger
        self._cached = cached
        self._file_size = fs.file_size(split.path)

    @property
    def split(self) -> InputSplit:
        return self._split

    def _acquire_index(self):
        """The split's columnar index, or ``None`` when the cache is
        off, absent, or the region is not fully readable."""
        if not self._cached:
            return None
        cache = getattr(self._fs, "split_cache", None)
        if cache is None:
            return None
        return cache.acquire(self._fs, self._split)

    # ------------------------------------------------------------- full scan
    def read_records(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(byte_offset, line)`` for every record owned by the split.

        Follows the Hadoop convention: skip a leading partial line unless
        the split starts at byte 0; keep reading past the split end until
        the current line completes.
        """
        split = self._split
        if split.length == 0 or split.start >= self._file_size:
            return iter(())
        index = self._acquire_index()
        if index is not None:
            # Same simulated price as the scalar path's single
            # read_range over [split.start, data_end).
            if self._ledger is not None:
                self._ledger.charge_seeks(1)
                self._ledger.charge_disk_read(index.scan_scaled_bytes)
            return iter(index.owned_records())
        return self._read_records_scalar()

    def _read_records_scalar(self) -> Iterator[Tuple[int, str]]:
        """Reference implementation: scan the region for newlines."""
        split = self._split
        # Hadoop reads the next line while the current position is <= the
        # split end (inclusive), so a line starting exactly at the
        # boundary belongs to this split and the next split skips it.
        end_limit = min(split.end, self._file_size)
        # Over-read to complete the final line: fetch until the next
        # newline at or after end_limit (bounded scan in chunks).
        data_end = self._find_line_end(end_limit)
        data = self._fs.read_range(split.path, split.start, data_end,
                                   ledger=self._ledger)
        pos = 0
        if split.start != 0:
            # Skip the partial first line; it belongs to the previous split.
            nl = data.find(b"\n")
            if nl < 0:
                return
            pos = nl + 1
        while split.start + pos <= end_limit and split.start + pos < data_end:
            nl = data.find(b"\n", pos)
            if nl < 0:
                line = data[pos:]
                if line:
                    yield split.start + pos, line.decode("utf-8")
                return
            yield split.start + pos, data[pos:nl].decode("utf-8")
            pos = nl + 1

    # -------------------------------------------------------------- salvage
    def available_prefix_end(self) -> int:
        """Largest offset ``p >= split.start`` such that every block of
        ``[split.start, p)`` is still readable on some replica (capped at
        the file size).  The degraded-read primitive: when a split loses
        its tail mid-scan, the prefix before the first lost block can
        still be served."""
        split = self._split
        meta = self._fs.namenode.get(split.path)
        end = meta.size
        if split.start >= end:
            return split.start
        prefix = split.start
        for block in self._fs.namenode.blocks_for_range(meta, split.start,
                                                        end):
            if not self._fs.block_available(block):
                break
            prefix = min(block.end, end)
        return prefix

    def read_records_salvage(self) -> Iterator[Tuple[int, str]]:
        """Best-effort :meth:`read_records`: yield the split's records
        whose bytes survive, stopping at the first lost block.

        Follows the same boundary conventions as the full scan, with one
        degradation: a line cut by the loss wall (its newline lies in a
        lost block) is dropped, since its tail is unrecoverable.  Charged
        like a sequential scan of the bytes actually read.
        """
        split = self._split
        if split.length == 0 or split.start >= self._file_size:
            return
        prefix_end = self.available_prefix_end()
        if prefix_end <= split.start:
            return
        end_limit = min(split.end, self._file_size)
        data = self._fs.read_range(split.path, split.start, prefix_end,
                                   ledger=self._ledger)
        pos = 0
        if split.start != 0:
            nl = data.find(b"\n")
            if nl < 0:
                return
            pos = nl + 1
        at_eof = prefix_end >= self._file_size
        while split.start + pos <= end_limit and split.start + pos < prefix_end:
            nl = data.find(b"\n", pos)
            if nl < 0:
                # Unterminated tail: real end-of-file keeps it, a loss
                # wall drops it (the rest of the line is gone).
                line = data[pos:]
                if line and at_eof:
                    yield split.start + pos, line.decode("utf-8")
                return
            yield split.start + pos, data[pos:nl].decode("utf-8")
            pos = nl + 1

    def _find_line_end(self, position: int) -> int:
        """First byte offset after the line containing ``position - 1``.

        Shared with the index builder (one implementation of the
        chunked boundary scan — see :mod:`repro.hdfs.split_cache`), so
        the cached and scalar paths can never drift apart here.
        """
        return _find_forward_newline(self._fs, self._split.path, position,
                                     self._file_size)

    # ------------------------------------------------------------ random probe
    def line_at(self, position: int) -> Tuple[int, str]:
        """Return ``(line_start, line)`` for the line containing ``position``.

        This is the backtracking primitive of Algorithm 2: seek to a random
        byte, back up to the start of the enclosing line, read the line.
        Charged as one random probe (seek + bytes actually touched).
        """
        if not 0 <= position < self._file_size:
            raise ValueError(f"position {position} outside file of size "
                             f"{self._file_size}")
        index = None
        if self._split.start <= position < self._split.end:
            index = self._acquire_index()
        if index is not None and position < index.data_end:
            entry = index.entry_of(position)
            line = index.lines[entry]
            if line is not None:
                index.charge_probe(self._ledger, entry)
                return int(index.starts[entry]), line
            # Partial entry 0: the line begins before the region and its
            # text was never decoded — read it the scalar way (rare, and
            # always an ownership miss for the pre-map sampler).
        return self._line_at_scalar(position)

    def _line_at_scalar(self, position: int) -> Tuple[int, str]:
        """Reference implementation: backtrack, then read the line."""
        start = self._find_line_start(position)
        end = self._find_line_end(start)
        raw = self._fs.read_range(self._split.path, start, end,
                                  ledger=self._ledger, sequential=False)
        line = raw.decode("utf-8").rstrip("\n")
        return start, line

    def _find_line_start(self, position: int) -> int:
        """Scan backwards from ``position`` to the start of its line
        (the shared chunked boundary scan of
        :mod:`repro.hdfs.split_cache`)."""
        return _find_backward_line_start(self._fs, self._split.path,
                                         position)
