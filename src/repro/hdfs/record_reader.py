"""Line-oriented record reading over the simulated HDFS.

Reproduces the two behaviours of Hadoop's ``LineRecordReader`` that the
paper's sampling algorithms rely on (§3.3, Algorithm 2):

* **Split-boundary convention** — a mapper whose split does not start at
  byte 0 skips the first (partial) line, and reads one line *past* its
  split end, so that every line of the file is processed exactly once
  even though splits cut lines arbitrarily.
* **Backtracking** — given an arbitrary byte position (pre-map sampling
  draws positions uniformly at random), back up to the beginning of the
  enclosing line before reading it.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.cluster.costmodel import CostLedger
from repro.hdfs.filesystem import HDFS
from repro.hdfs.splits import InputSplit

_NEWLINE = ord("\n")
#: Window size used when scanning backwards for a line start.
_BACKTRACK_CHUNK = 4096


class LineRecordReader:
    """Reads newline-delimited records from one input split."""

    def __init__(self, fs: HDFS, split: InputSplit, *,
                 ledger: Optional[CostLedger] = None) -> None:
        self._fs = fs
        self._split = split
        self._ledger = ledger
        self._file_size = fs.file_size(split.path)

    @property
    def split(self) -> InputSplit:
        return self._split

    # ------------------------------------------------------------- full scan
    def read_records(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(byte_offset, line)`` for every record owned by the split.

        Follows the Hadoop convention: skip a leading partial line unless
        the split starts at byte 0; keep reading past the split end until
        the current line completes.
        """
        split = self._split
        if split.length == 0 or split.start >= self._file_size:
            return
        # Hadoop reads the next line while the current position is <= the
        # split end (inclusive), so a line starting exactly at the
        # boundary belongs to this split and the next split skips it.
        end_limit = min(split.end, self._file_size)
        # Over-read to complete the final line: fetch until the next
        # newline at or after end_limit (bounded scan in chunks).
        data_end = self._find_line_end(end_limit)
        data = self._fs.read_range(split.path, split.start, data_end,
                                   ledger=self._ledger)
        pos = 0
        if split.start != 0:
            # Skip the partial first line; it belongs to the previous split.
            nl = data.find(b"\n")
            if nl < 0:
                return
            pos = nl + 1
        while split.start + pos <= end_limit and split.start + pos < data_end:
            nl = data.find(b"\n", pos)
            if nl < 0:
                line = data[pos:]
                if line:
                    yield split.start + pos, line.decode("utf-8")
                return
            yield split.start + pos, data[pos:nl].decode("utf-8")
            pos = nl + 1

    def _find_line_end(self, position: int) -> int:
        """First byte offset after the line containing ``position - 1``."""
        pos = position
        while pos < self._file_size:
            chunk_end = min(pos + _BACKTRACK_CHUNK, self._file_size)
            chunk = self._fs.read_range(self._split.path, pos, chunk_end,
                                        ledger=None)
            nl = chunk.find(b"\n")
            if nl >= 0:
                return pos + nl + 1
            pos = chunk_end
        return self._file_size

    # ------------------------------------------------------------ random probe
    def line_at(self, position: int) -> Tuple[int, str]:
        """Return ``(line_start, line)`` for the line containing ``position``.

        This is the backtracking primitive of Algorithm 2: seek to a random
        byte, back up to the start of the enclosing line, read the line.
        Charged as one random probe (seek + bytes actually touched).
        """
        if not 0 <= position < self._file_size:
            raise ValueError(f"position {position} outside file of size "
                             f"{self._file_size}")
        start = self._find_line_start(position)
        end = self._find_line_end(start)
        raw = self._fs.read_range(self._split.path, start, end,
                                  ledger=self._ledger, sequential=False)
        line = raw.decode("utf-8").rstrip("\n")
        return start, line

    def _find_line_start(self, position: int) -> int:
        """Scan backwards from ``position`` to the start of its line."""
        pos = position
        while pos > 0:
            chunk_start = max(0, pos - _BACKTRACK_CHUNK)
            chunk = self._fs.read_range(self._split.path, chunk_start, pos,
                                        ledger=None)
            nl = chunk.rfind(b"\n")
            if nl >= 0:
                return chunk_start + nl + 1
            pos = chunk_start
        return 0
