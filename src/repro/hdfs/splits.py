"""Logical input splits.

An MR job does not consume blocks directly: each block may be subdivided
into *input splits* that are handed to mappers (paper §3.3).  Splits are
computed over **logical** bytes so that a file standing in for 100 GB
yields the number of map tasks a real 100 GB file would; each logical
split maps back to an actual byte range for record reading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.util.validation import check_positive


@dataclass(frozen=True)
class InputSplit:
    """One mapper's share of a file.

    ``start``/``length`` are *actual* byte coordinates used to read
    records; ``logical_length`` is what the cost model charges for a full
    scan of the split.
    """

    path: str
    index: int
    start: int
    length: int
    logical_length: int

    @property
    def end(self) -> int:
        return self.start + self.length

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 0:
            raise ValueError("split coordinates cannot be negative")


def compute_splits(path: str, actual_size: int, logical_size: int,
                   split_logical_bytes: int) -> List[InputSplit]:
    """Partition a file into splits of at most ``split_logical_bytes``.

    The number of splits is ``ceil(logical_size / split_logical_bytes)``
    and the actual byte range is divided evenly among them, so split
    boundaries in actual bytes stay proportional to logical bytes.
    """
    check_positive("split_logical_bytes", split_logical_bytes)
    if actual_size < 0 or logical_size < 0:
        raise ValueError("file sizes cannot be negative")
    if actual_size == 0:
        return []
    n_splits = max(1, math.ceil(logical_size / split_logical_bytes))
    n_splits = min(n_splits, actual_size)  # at least one actual byte per split
    splits: List[InputSplit] = []
    for i in range(n_splits):
        start = (actual_size * i) // n_splits
        end = (actual_size * (i + 1)) // n_splits
        logical_start = (logical_size * i) // n_splits
        logical_end = (logical_size * (i + 1)) // n_splits
        splits.append(InputSplit(path=path, index=i, start=start,
                                 length=end - start,
                                 logical_length=logical_end - logical_start))
    return splits
