"""Facade of the simulated HDFS.

Ties together the NameNode (metadata), DataNodes (block bytes) and the
cost model.  Byte-oriented reads optionally charge a
:class:`~repro.cluster.costmodel.CostLedger`, always in *logical* bytes
(``actual bytes × logical_scale``), so the same code path prices a real
small file and a stand-in for a 100 GB file correctly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.costmodel import CostLedger
from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.errors import (
    BlockUnavailableError,
    FileNotFoundInHdfs,
    ReplicationError,
)
from repro.hdfs.namenode import FileMeta, NameNode
from repro.hdfs.split_cache import SplitIndexCache
from repro.hdfs.splits import InputSplit, compute_splits
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


class HDFS:
    """In-memory simulated Hadoop Distributed File System.

    Parameters
    ----------
    n_datanodes:
        Number of simulated DataNodes (the paper's cluster had 5).
    block_size:
        Actual bytes per block (default 64 MB as in Hadoop 0.20; tests use
        much smaller blocks to exercise multi-block files cheaply).
    replication:
        Replication factor; silently capped at the number of DataNodes.
    seed:
        Seed / generator for randomized block placement.
    """

    def __init__(self, n_datanodes: int = 5, *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 replication: int = 3,
                 seed: SeedLike = None) -> None:
        check_positive_int("n_datanodes", n_datanodes)
        check_positive_int("block_size", block_size)
        check_positive_int("replication", replication)
        self.namenode = NameNode()
        self.block_size = block_size
        self.replication = min(replication, n_datanodes)
        self._rng = ensure_rng(seed)
        self.datanodes: Dict[str, DataNode] = {
            f"datanode-{i}": DataNode(f"datanode-{i}") for i in range(n_datanodes)
        }
        #: Columnar ingest cache (newline indexes + decoded line columns)
        #: shared by every reader/sampler over this filesystem; persists
        #: across jobs and expansion iterations, invalidated on writes.
        self.split_cache = SplitIndexCache()
        #: Bumped on every namespace or availability change.  Consumers
        #: that ship snapshots of this filesystem elsewhere (the job
        #: engine's broadcast-once data plane) compare it to decide
        #: whether a shipped copy is still current.
        self.mutation_count = 0
        #: Reads served by a non-primary replica because an earlier
        #: replica was unavailable (best-effort local accounting; the
        #: simulated charge is identical either way).
        self.failover_reads = 0

    # ----------------------------------------------------------------- pickle
    def __getstate__(self) -> Dict:
        """Ship the filesystem *without* its ingest cache.

        The cache is a physical (wall-clock) accelerator holding data
        derivable from the blocks; excluding it keeps broadcast/IPC
        payloads lean, and each process-pool worker rebuilds its own
        copy once per worker on first touch.
        """
        state = self.__dict__.copy()
        state["split_cache"] = None
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("split_cache") is None:
            self.split_cache = SplitIndexCache()

    # ------------------------------------------------------------------ nodes
    def healthy_datanodes(self) -> List[DataNode]:
        return [dn for dn in self.datanodes.values() if dn.alive]

    def fail_datanode(self, node_id: str) -> None:
        """Mark one DataNode failed (its replicas become unreadable)."""
        self.datanodes[node_id].fail()
        self.mutation_count += 1

    def recover_datanode(self, node_id: str) -> None:
        self.datanodes[node_id].recover()
        self.mutation_count += 1

    # ------------------------------------------------------------------ write
    def write_bytes(self, path: str, data: bytes, *,
                    logical_scale: float = 1.0,
                    overwrite: bool = False,
                    ledger: Optional[CostLedger] = None) -> FileMeta:
        """Store ``data`` at ``path``, chunked into replicated blocks."""
        if self.namenode.exists(path) and overwrite:
            self.delete(path)
        # Validation first: a refused write (path exists, no overwrite)
        # must leave the cache and the mutation counter untouched.
        meta = self.namenode.create_file(path, logical_scale=logical_scale,
                                         overwrite=overwrite)
        self.split_cache.invalidate(meta.path)
        self.mutation_count += 1
        for chunk_start in range(0, len(data), self.block_size):
            chunk = data[chunk_start:chunk_start + self.block_size]
            block = self.namenode.allocate_block(meta, len(chunk))
            self._place_block(block, chunk)
        if ledger is not None:
            ledger.charge_disk_write(len(data) * logical_scale)
            # replication traffic: (replication - 1) copies over the network
            ledger.charge_network(len(data) * logical_scale * (self.replication - 1))
        return meta

    def write_text(self, path: str, text: str, **kwargs) -> FileMeta:
        return self.write_bytes(path, text.encode("utf-8"), **kwargs)

    def write_lines(self, path: str, lines: Sequence[str], **kwargs) -> FileMeta:
        """Write newline-delimited records (the paper's default format)."""
        body = "\n".join(lines)
        if lines:
            body += "\n"
        return self.write_text(path, body, **kwargs)

    def _place_block(self, block: Block, data: bytes) -> None:
        healthy = self.healthy_datanodes()
        if len(healthy) < 1:
            raise ReplicationError("no healthy DataNodes available")
        k = min(self.replication, len(healthy))
        chosen = self._rng.choice(len(healthy), size=k, replace=False)
        for idx in chosen:
            node = healthy[int(idx)]
            node.store(block.block_id, data)
            block.replicas.append(node.node_id)

    # ------------------------------------------------------------------- read
    def _read_block(self, block: Block) -> bytes:
        for i, node_id in enumerate(block.replicas):
            node = self.datanodes.get(node_id)
            if node is not None and node.has_block(block.block_id):
                if i:
                    self.failover_reads += 1
                return node.read(block.block_id)
        raise BlockUnavailableError(
            f"block {block.block_id} of {block.path}: all replicas unavailable")

    def read_bytes(self, path: str, *, ledger: Optional[CostLedger] = None) -> bytes:
        """Full sequential read of a file."""
        meta = self.namenode.get(path)
        parts = [self._read_block(b) for b in meta.blocks]
        if ledger is not None:
            ledger.charge_seeks(max(1, len(meta.blocks)))
            ledger.charge_disk_read(meta.logical_size)
        return b"".join(parts)

    def read_range(self, path: str, start: int, end: int, *,
                   ledger: Optional[CostLedger] = None,
                   sequential: bool = True) -> bytes:
        """Read actual bytes ``[start, end)`` of ``path``.

        ``sequential=False`` marks a random probe (one extra seek), which
        is how pre-map sampling's per-line reads are priced.
        """
        meta = self.namenode.get(path)
        if start < 0 or end > meta.size or start > end:
            raise ValueError(f"range [{start}, {end}) outside {path} "
                             f"of size {meta.size}")
        blocks = self.namenode.blocks_for_range(meta, start, end)
        chunks: List[bytes] = []
        for block in blocks:
            data = self._read_block(block)
            lo = max(start, block.offset) - block.offset
            hi = min(end, block.end) - block.offset
            chunks.append(data[lo:hi])
        if ledger is not None:
            ledger.charge_seeks(1 if sequential else 1 + max(0, len(blocks) - 1))
            ledger.charge_disk_read((end - start) * meta.logical_scale)
        return b"".join(chunks)

    def read_text(self, path: str, **kwargs) -> str:
        return self.read_bytes(path, **kwargs).decode("utf-8")

    def read_lines(self, path: str, **kwargs) -> List[str]:
        text = self.read_text(path, **kwargs)
        return text.splitlines()

    # -------------------------------------------------------------- namespace
    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        meta = self.namenode.delete(path)
        self.split_cache.invalidate(meta.path)
        self.mutation_count += 1
        for block in meta.blocks:
            for node_id in block.replicas:
                node = self.datanodes.get(node_id)
                if node is not None:
                    node.drop(block.block_id)

    def list_files(self, prefix: str = "/") -> List[str]:
        return self.namenode.list_files(prefix)

    def file_size(self, path: str) -> int:
        return self.namenode.get(path).size

    def logical_size(self, path: str) -> int:
        return self.namenode.get(path).logical_size

    # ----------------------------------------------------------------- splits
    def get_splits(self, path: str, split_logical_bytes: Optional[int] = None
                   ) -> List[InputSplit]:
        """Logical input splits of ``path`` (default: one per block).

        The default split size is one block in *logical* terms —
        ``block_size × logical_scale`` — so a stand-in file produces the
        same number of map tasks as the file it represents.
        """
        meta = self.namenode.get(path)
        if split_logical_bytes is None:
            split_logical_bytes = max(1, int(self.block_size * meta.logical_scale))
        return compute_splits(meta.path, meta.size, meta.logical_size,
                              split_logical_bytes)

    # ------------------------------------------------------------ availability
    def block_available(self, block: Block) -> bool:
        return any(
            self.datanodes[nid].has_block(block.block_id)
            for nid in block.replicas if nid in self.datanodes
        )

    def available_fraction(self, path: str) -> float:
        """Fraction of a file's bytes still readable after failures.

        This is the quantity EARL's fault-tolerant mode (paper §3.4) feeds
        into its correction logic when nodes have been lost.
        """
        meta = self.namenode.get(path)
        if meta.size == 0:
            return 1.0
        ok = sum(b.length for b in meta.blocks if self.block_available(b))
        return ok / meta.size

    def split_available(self, split: InputSplit) -> bool:
        """Whether every block overlapping ``split`` is still readable."""
        meta = self.namenode.get(split.path)
        end = min(split.end, meta.size)
        if split.start >= end:
            return True
        blocks = self.namenode.blocks_for_range(meta, split.start, end)
        return all(self.block_available(b) for b in blocks)

    def total_used_bytes(self) -> int:
        return sum(dn.used_bytes for dn in self.datanodes.values())
