"""Seeded chaos schedules.

A schedule is plain data: a tuple of :class:`ChaosEvent`, each pinned
to a 0-based snapshot index (``at``) and carrying its own ``seed`` so
the event's row-level damage pattern is independent of everything else.
:meth:`ChaosSchedule.generate` derives a schedule deterministically
from one master seed; :meth:`to_dict` / :meth:`from_dict` round-trip it
through JSON, so a failing chaotic run can be attached to a bug report
and replayed exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.util.rng import SeedLike, ensure_rng

#: Drop a random fraction of the sample rows (engine ``report_loss``).
KIND_LOSS = "loss"
#: Fail a random fraction of the cluster's healthy nodes.
KIND_KILL_NODES = "kill-nodes"
#: Slow one random healthy node by ``factor`` (the straggler case).
KIND_SLOW_NODE = "slow-node"
#: Recover every dead node (and clear slow factors).
KIND_RECOVER = "recover"
#: Kill the *service process* and restart it against the same durable
#: store (crash-recovery drill).  Only the restart harness
#: (:func:`repro.chaos.restart.run_with_restarts`) interprets this
#: kind; the in-process :class:`ChaosDriver` rejects it.
KIND_KILL_RESTART = "kill-restart"

_KINDS = frozenset({KIND_LOSS, KIND_KILL_NODES, KIND_SLOW_NODE,
                    KIND_RECOVER, KIND_KILL_RESTART})


@dataclass(frozen=True)
class ChaosEvent:
    """One fault, pinned to the snapshot boundary it fires after.

    ``at`` counts the snapshots the driver has yielded (0-based): the
    event fires after snapshot ``at`` and lands at the engine's next
    round boundary.  ``seed`` pins the event's own randomness (which
    rows die, which nodes fail) independently of the engine seed.
    """

    at: int
    kind: str
    fraction: float = 0.0
    factor: float = 1.0                       # slow-node multiplier
    keys: Optional[Tuple[Any, ...]] = None    # strata filter for losses
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event index 'at' cannot be negative")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; "
                             f"known: {sorted(_KINDS)}")
        if self.kind == KIND_LOSS and not 0.0 < self.fraction <= 1.0:
            raise ValueError("loss fraction must be in (0, 1]")
        if self.kind == KIND_KILL_NODES and not 0.0 < self.fraction <= 1.0:
            raise ValueError("kill fraction must be in (0, 1]")
        if self.kind == KIND_SLOW_NODE and self.factor < 1.0:
            raise ValueError("slow-node factor must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["keys"] = None if self.keys is None else list(self.keys)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ChaosEvent":
        keys = doc.get("keys")
        return cls(at=int(doc["at"]), kind=str(doc["kind"]),
                   fraction=float(doc.get("fraction", 0.0)),
                   factor=float(doc.get("factor", 1.0)),
                   keys=None if keys is None else tuple(keys),
                   seed=int(doc.get("seed", 0)))


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, replayable sequence of chaos events."""

    events: Tuple[ChaosEvent, ...] = ()

    @classmethod
    def none(cls) -> "ChaosSchedule":
        """The empty schedule: drives a run without touching it."""
        return cls()

    @classmethod
    def generate(cls, seed: SeedLike, *, rounds: int,
                 loss_rate: float = 0.3,
                 kill_rate: float = 0.0,
                 slow_rate: float = 0.0,
                 kill_restart_rate: float = 0.0,
                 max_fraction: float = 0.5,
                 max_slow_factor: float = 8.0,
                 keys: Optional[Tuple[Any, ...]] = None) -> "ChaosSchedule":
        """Derive a schedule from one master seed.

        Each of ``rounds`` snapshot boundaries independently draws
        whether a loss / node-kill / straggler / service-kill event
        fires there (``*_rate`` probabilities) and how hard it hits
        (uniform up to ``max_fraction`` / ``max_slow_factor``).  Same
        arguments, same seed → the identical schedule, every time.
        """
        if rounds < 0:
            raise ValueError("rounds cannot be negative")
        for name, rate in (("loss_rate", loss_rate),
                           ("kill_rate", kill_rate),
                           ("slow_rate", slow_rate),
                           ("kill_restart_rate", kill_restart_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        rng = ensure_rng(seed)
        events: List[ChaosEvent] = []
        for at in range(rounds):
            if rng.random() < loss_rate:
                events.append(ChaosEvent(
                    at=at, kind=KIND_LOSS,
                    fraction=float(rng.uniform(0.05, max_fraction)),
                    keys=keys,
                    seed=int(rng.integers(0, 2**63 - 1))))
            if kill_rate and rng.random() < kill_rate:
                events.append(ChaosEvent(
                    at=at, kind=KIND_KILL_NODES,
                    fraction=float(rng.uniform(0.05, max_fraction)),
                    seed=int(rng.integers(0, 2**63 - 1))))
            if slow_rate and rng.random() < slow_rate:
                events.append(ChaosEvent(
                    at=at, kind=KIND_SLOW_NODE,
                    factor=float(rng.uniform(1.5, max_slow_factor)),
                    seed=int(rng.integers(0, 2**63 - 1))))
            if kill_restart_rate and rng.random() < kill_restart_rate:
                events.append(ChaosEvent(
                    at=at, kind=KIND_KILL_RESTART,
                    seed=int(rng.integers(0, 2**63 - 1))))
        return cls(tuple(events))

    def events_at(self, index: int) -> Tuple[ChaosEvent, ...]:
        """Every event pinned to snapshot boundary ``index``."""
        return tuple(e for e in self.events if e.at == index)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ChaosSchedule":
        return cls(tuple(ChaosEvent.from_dict(e)
                         for e in doc.get("events", ())))
