"""Deterministic flaky-task injection for the MapReduce layer.

:class:`FlakyMapper` wraps any :class:`~repro.mapreduce.Mapper` and
makes chosen task attempts die with
:class:`~repro.mapreduce.TaskFailedError` before the inner mapper sees
a record.  Whether task ``i`` is flaky — and for how many attempts —
is a pure function of ``(seed, i)``, so schedulers, executors and the
retry order cannot perturb the injection: the same job config fails
the same tasks on serial, thread and process backends.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

import numpy as np

from repro.mapreduce.errors import TaskFailedError
from repro.mapreduce.mapper import Mapper
from repro.mapreduce.types import KeyValue, TaskContext


class FlakyMapper(Mapper):
    """Fail selected map-task attempts, then behave like ``inner``.

    ``fail_attempts`` pins exact budgets (task index → number of
    attempts that die); ``rate`` flips a per-task coin seeded by
    ``(seed, index)`` and charges ``extra_attempts`` failures to the
    losers.  An attempt dies while ``ctx.attempt < budget(index)`` —
    with a :class:`~repro.mapreduce.FaultPolicy` granting at least
    ``budget`` retries the job completes exactly; with fewer, the task
    fails permanently and the fault policy's salvage/blacklist
    machinery takes over.
    """

    def __init__(self, inner: Mapper, *,
                 rate: float = 0.0,
                 extra_attempts: int = 1,
                 fail_attempts: Optional[Mapping[int, int]] = None,
                 seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if extra_attempts < 1:
            raise ValueError("extra_attempts must be >= 1")
        self.inner = inner
        self.rate = float(rate)
        self.extra_attempts = int(extra_attempts)
        self.fail_attempts = dict(fail_attempts or {})
        self.seed = int(seed)
        # Flakiness is a property of the task, not the worker: only
        # inherit parallel safety from the wrapped mapper.
        self.parallel_safe = bool(getattr(inner, "parallel_safe", False))
        self._budgets: Dict[int, int] = {}

    # ----------------------------------------------------- injection
    @staticmethod
    def _task_index(ctx: TaskContext) -> int:
        # Task ids look like "map-<split index>".
        task_id = ctx.task_id or "map-0"
        try:
            return int(task_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def budget(self, index: int) -> int:
        """Failing attempts charged to task ``index`` (deterministic)."""
        if index not in self._budgets:
            if index in self.fail_attempts:
                budget = max(0, int(self.fail_attempts[index]))
            elif self.rate and float(np.random.default_rng(
                    [self.seed, index]).random()) < self.rate:
                budget = self.extra_attempts
            else:
                budget = 0
            self._budgets[index] = budget
        return self._budgets[index]

    # ------------------------------------------------ mapper surface
    def setup(self, ctx: TaskContext) -> None:
        index = self._task_index(ctx)
        if ctx.attempt < self.budget(index):
            raise TaskFailedError(
                f"chaos: injected failure on task {ctx.task_id!r} "
                f"attempt {ctx.attempt} "
                f"(budget {self.budget(index)})")
        self.inner.setup(ctx)

    def map(self, key: Hashable, value: Any,
            ctx: TaskContext) -> Iterable[KeyValue]:
        return self.inner.map(key, value, ctx)

    def cleanup(self, ctx: TaskContext) -> Iterable[KeyValue]:
        return self.inner.cleanup(ctx)
