"""Chaos harness: seeded fault schedules replayed against the engines.

Paper §3.4 argues EARL should *degrade, not die*: when nodes fail
mid-computation, continue on the surviving sample with honestly wider
bounds instead of restarting.  This package turns that claim into a
testable harness:

* :class:`ChaosSchedule` — a deterministic, seed-generated list of
  fault events (sample loss, node kills, stragglers, recovery), each
  pinned to a snapshot boundary and carrying its own rng stream;
* :class:`ChaosDriver` — replays a schedule against any engine stream
  (:class:`~repro.core.EarlSession`,
  :class:`~repro.streaming.SessionManager`,
  :class:`~repro.core.grouped.GroupedEarlSession`,
  :class:`~repro.core.EarlJob`) and reports what fired;
* :class:`FlakyMapper` — a deterministic flaky-task decorator for
  exercising the MapReduce :class:`~repro.mapreduce.FaultPolicy`;
* :func:`run_with_restarts` — kill-and-restart drills against the
  durable service: crash ``ApproxQueryService`` at scheduled snapshot
  boundaries, recover from the same
  :class:`~repro.service.DurableSessionStore`, and assert the resumed
  streams are byte-identical to an uninterrupted run.

Everything is a pure function of seeds: the same schedule against the
same seeded engine reproduces the same degraded answer byte for byte,
and an empty schedule leaves the run byte-identical to one that never
imported this package.  The invariants the chaos suite asserts — no
hangs, no leaked pools, no lost events, valid bounds on surviving
data — live in ``tests/chaos/``.
"""

from repro.chaos.driver import ChaosDriver, ChaosReport
from repro.chaos.flaky import FlakyMapper
from repro.chaos.restart import RestartReport, run_with_restarts
from repro.chaos.schedule import (
    KIND_KILL_NODES,
    KIND_KILL_RESTART,
    KIND_LOSS,
    KIND_RECOVER,
    KIND_SLOW_NODE,
    ChaosEvent,
    ChaosSchedule,
)

__all__ = [
    "ChaosDriver",
    "ChaosReport",
    "ChaosEvent",
    "ChaosSchedule",
    "FlakyMapper",
    "RestartReport",
    "run_with_restarts",
    "KIND_LOSS",
    "KIND_KILL_NODES",
    "KIND_SLOW_NODE",
    "KIND_RECOVER",
    "KIND_KILL_RESTART",
]
