"""Kill-and-restart chaos: crash the service, recover from the store.

The schedule kinds handled by :class:`~repro.chaos.driver.ChaosDriver`
perturb an *engine*; :data:`~repro.chaos.schedule.KIND_KILL_RESTART`
events perturb the *service process*.  :func:`run_with_restarts`
drives a set of submitted sessions to completion while killing the
service (``ApproxQueryService.crash`` — the in-process SIGKILL) at
every scheduled snapshot boundary and restarting it against the same
:class:`~repro.service.durable.DurableSessionStore`.  Clients keep
their event-id cursors across restarts, exactly like a real resuming
client, so the harness's output is the full per-session event stream
as one detached observer would have seen it.

The invariant the chaos suite asserts on top: with a deterministic
service (fixed master seed, fixed submission order), the streams this
harness collects are **byte-identical** to an uninterrupted run — no
event lost, duplicated, or altered by any number of crashes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.chaos.schedule import KIND_KILL_RESTART, ChaosSchedule
from repro.service.client import LocalClient
from repro.service.durable import DurableSessionStore
from repro.service.protocol import EVENT_FINAL, EVENT_SNAPSHOT
from repro.service.service import ApproxQueryService

#: Consecutive all-idle poll sweeps tolerated before declaring a hang.
_MAX_IDLE_SWEEPS = 200


@dataclass
class RestartReport:
    """What a kill-and-restart run observed."""

    #: Per-session raw event bytes, in stream order, as one resuming
    #: client collected them across every restart.
    events: Dict[str, List[str]] = field(default_factory=dict)
    #: Service kills actually fired (scheduled kills past the end of
    #: the run never fire).
    restarts: int = 0
    #: Snapshot/final events observed in total (the boundary counter
    #: kill events are pinned to).
    snapshots: int = 0


async def run_with_restarts(
        build: Callable[[DurableSessionStore], ApproxQueryService],
        store_path: str,
        specs: Sequence[Mapping[str, Any]],
        schedule: ChaosSchedule, *,
        fsync: bool = False,
        poll_timeout: float = 1.0) -> RestartReport:
    """Run ``specs`` to completion under scheduled service kills.

    ``build`` constructs a service over a given store (registering
    datasets/tables/clusters); it is called once per service
    generation, so it must be deterministic.  ``schedule``'s
    ``kill-restart`` events are pinned to the global 0-based index of
    observed snapshot/final events: after snapshot ``at`` is consumed,
    the service is crashed and a fresh one is recovered from the same
    store directory.  All other event kinds in the schedule are
    ignored here (drive engine-level faults with
    :class:`~repro.chaos.driver.ChaosDriver`).
    """
    kills = deque(sorted(
        e.at for e in schedule.events if e.kind == KIND_KILL_RESTART))
    store = DurableSessionStore(store_path, fsync=fsync)
    service = build(store)
    await service.start()
    client = LocalClient(service)
    sids = [await client.submit(spec) for spec in specs]
    await service.flush()

    report = RestartReport(events={sid: [] for sid in sids})
    cursors = {sid: 0 for sid in sids}
    done: set = set()
    idle_sweeps = 0
    try:
        while len(done) < len(sids):
            progressed = False
            crash_now = False
            for sid in sids:
                if sid in done:
                    continue
                page = await client.poll(sid, after=cursors[sid],
                                         wait=True, timeout=poll_timeout)
                for event in page.events:
                    report.events[sid].append(event.raw)
                    cursors[sid] = event.seq
                    if event.type in (EVENT_SNAPSHOT, EVENT_FINAL):
                        while kills and kills[0] <= report.snapshots:
                            kills.popleft()
                            crash_now = True
                        report.snapshots += 1
                if page.events:
                    progressed = True
                elif page.terminal:
                    done.add(sid)   # sealed and drained
                if crash_now:
                    break
            if crash_now:
                await service.crash()
                report.restarts += 1
                store = DurableSessionStore(store_path, fsync=fsync)
                service = build(store)
                await service.start()
                client = LocalClient(service)
                continue
            idle_sweeps = 0 if progressed else idle_sweeps + 1
            if idle_sweeps > _MAX_IDLE_SWEEPS:
                raise RuntimeError(
                    f"no progress after {_MAX_IDLE_SWEEPS} poll sweeps; "
                    f"undrained: {sorted(set(sids) - done)}")
    finally:
        await service.stop()
    return report
