"""Replay a :class:`ChaosSchedule` against a live engine stream.

The driver wraps any snapshot stream — :class:`~repro.core.EarlSession`,
:class:`~repro.streaming.SessionManager`,
:class:`~repro.core.grouped.GroupedEarlSession` or
:class:`~repro.core.EarlJob` — and fires the schedule's events at
snapshot boundaries: after yielding snapshot ``i`` it applies every
event with ``at == i``, so the fault lands at the engine's next round
boundary exactly like a mid-run ``report_loss`` call would.

When no event fires the driver touches nothing and draws no random
numbers, so driving with :meth:`ChaosSchedule.none` is byte-identical
to iterating the bare stream — the zero-fault invariant the chaos
suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.chaos.schedule import (
    KIND_KILL_NODES,
    KIND_KILL_RESTART,
    KIND_LOSS,
    KIND_RECOVER,
    KIND_SLOW_NODE,
    ChaosEvent,
    ChaosSchedule,
)
from repro.cluster import FailureInjector
from repro.util.rng import ensure_rng


@dataclass
class ChaosReport:
    """What a chaotic run produced and which faults actually landed.

    ``fired`` can be shorter than the schedule: events pinned past the
    last snapshot boundary never fire (the run finished first).
    """

    snapshots: List[Any] = field(default_factory=list)
    fired: List[ChaosEvent] = field(default_factory=list)
    final: Any = None
    degraded: bool = False
    lost_fraction: float = 0.0
    #: Per-query final snapshots (:meth:`ChaosDriver.run_manager` only).
    results: Optional[Dict[str, Any]] = None


class ChaosDriver:
    """Drives an engine stream while injecting a fault schedule.

    ``cluster`` is only needed for node-level events (``kill-nodes``,
    ``slow-node``, ``recover``); pure sample-loss schedules work
    against any engine with a ``report_loss`` method.
    """

    def __init__(self, schedule: Optional[ChaosSchedule] = None, *,
                 cluster: Any = None) -> None:
        self.schedule = (schedule if schedule is not None
                         else ChaosSchedule.none())
        self.cluster = cluster
        #: Events that actually landed, in firing order.
        self.fired: List[ChaosEvent] = []

    # ------------------------------------------------------------ core
    def drive(self, stream: Iterable[Any], *,
              loss_target: Any = None) -> Iterator[Any]:
        """Yield the stream's items, firing events between them.

        ``loss_target`` is the object whose ``report_loss`` receives
        :data:`KIND_LOSS` events (usually the session the stream came
        from).  The wrapper is transparent when nothing fires.
        """
        for index, item in enumerate(stream):
            yield item
            for event in self.schedule.events_at(index):
                self._fire(event, loss_target)
                self.fired.append(event)

    def _fire(self, event: ChaosEvent, loss_target: Any) -> None:
        if event.kind == KIND_LOSS:
            if loss_target is None:
                raise ValueError(
                    "schedule contains a loss event but the driven "
                    "stream has no loss target (pass loss_target= or "
                    "use run_session/run_manager/run_grouped)")
            if event.keys is not None:
                loss_target.report_loss(event.fraction, keys=event.keys,
                                        seed=event.seed)
            else:
                loss_target.report_loss(event.fraction, seed=event.seed)
        elif event.kind == KIND_KILL_NODES:
            self._require_cluster(event)
            FailureInjector(self.cluster, seed=event.seed) \
                .fail_random_fraction(event.fraction)
        elif event.kind == KIND_SLOW_NODE:
            self._require_cluster(event)
            healthy = self.cluster.healthy_nodes
            if healthy:
                pick = int(ensure_rng(event.seed).integers(0, len(healthy)))
                self.cluster.set_slow_node(healthy[pick].node_id,
                                           event.factor)
        elif event.kind == KIND_RECOVER:
            self._require_cluster(event)
            for node in list(self.cluster.nodes):
                if not node.alive:
                    self.cluster.recover_node(node.node_id)
            self.cluster.clear_slow_nodes()
        elif event.kind == KIND_KILL_RESTART:
            raise ValueError(
                "kill-restart events target the service process, not an "
                "engine stream; drive them with "
                "repro.chaos.restart.run_with_restarts")

    def _require_cluster(self, event: ChaosEvent) -> None:
        if self.cluster is None:
            raise ValueError(
                f"schedule contains a {event.kind!r} event but the "
                f"driver was built without a cluster")

    # -------------------------------------------------------- wrappers
    def run_session(self, session: Any) -> ChaosReport:
        """Drive an :class:`EarlSession` (or anything yielding
        ``ProgressSnapshot``-shaped items with ``report_loss``)."""
        snapshots = list(self.drive(session.stream(),
                                    loss_target=session))
        final = snapshots[-1] if snapshots else None
        return ChaosReport(
            snapshots=snapshots, fired=list(self.fired), final=final,
            degraded=bool(getattr(final, "degraded", False)),
            lost_fraction=float(getattr(final, "lost_fraction", 0.0)))

    def run_manager(self, manager: Any) -> ChaosReport:
        """Drive a :class:`SessionManager`; ``results`` maps query name
        to its final snapshot (queries withdrawn by a total stratum
        loss never finalize and are absent)."""
        pairs: List[Any] = []
        results: Dict[str, Any] = {}
        for query, snap in self.drive(manager.stream(),
                                      loss_target=manager):
            pairs.append((query, snap))
            if snap.final:
                results[query.name] = snap
        return ChaosReport(
            snapshots=pairs, fired=list(self.fired),
            final=pairs[-1][1] if pairs else None,
            degraded=bool(getattr(manager, "degraded", False)),
            lost_fraction=float(getattr(manager, "lost_fraction", 0.0)),
            results=results)

    def run_grouped(self, session: Any) -> ChaosReport:
        """Drive a :class:`GroupedEarlSession` (loss events honour
        their ``keys`` strata filter)."""
        snapshots = list(self.drive(session.stream(),
                                    loss_target=session))
        final = snapshots[-1] if snapshots else None
        return ChaosReport(
            snapshots=snapshots, fired=list(self.fired), final=final,
            degraded=bool(getattr(final, "degraded", False)),
            lost_fraction=float(getattr(final, "lost_fraction", 0.0)))

    def run_job(self, job: Any) -> ChaosReport:
        """Drive an :class:`EarlJob` over the driver's cluster.  Jobs
        take node-level faults; loss events require the job to expose
        ``report_loss`` (it does not today) and raise otherwise."""
        loss_target = job if hasattr(job, "report_loss") else None
        snapshots = list(self.drive(job.stream(),
                                    loss_target=loss_target))
        final = snapshots[-1] if snapshots else None
        return ChaosReport(
            snapshots=snapshots, fired=list(self.fired), final=final,
            degraded=bool(getattr(final, "degraded", False)),
            lost_fraction=float(getattr(final, "lost_fraction", 0.0)))
