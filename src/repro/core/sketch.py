"""Two-layer memory/disk sketch structure (paper §4.1).

Delta maintenance needs random items from the stored sample and from
each bootstrap resample, but those collections are too large for memory
and live on HDFS.  The paper's fix is a *sketch*: ``c·√n`` items drawn
without replacement and kept in memory.  Updates consume sketch items
sequentially (a sequential pick from a random subset is a random pick);
at the end of an iteration the used items are replaced via reservoir
substitution so the sketch stays a uniform subset; only when a sketch is
exhausted does the algorithm touch the disk copy — committing changes
and resampling a fresh sketch.

The constant ``c`` trades memory for update latency: "a larger c will
cost more memory space but will introduce less randomized update
latency" — the ablation benchmark sweeps it.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

#: Simulated bytes per stored item, used to price disk access.
ITEM_BYTES = 8


class Sketch:
    """In-memory random subset of a disk-resident collection."""

    def __init__(self, backing: Sequence[Any], c: float = 4.0, *,
                 rng: Optional[np.random.Generator] = None,
                 ledger: Optional[CostLedger] = None,
                 io_scale: float = 1.0) -> None:
        check_positive("c", c)
        check_positive("io_scale", io_scale)
        self._backing = backing
        self._c = c
        self._rng = ensure_rng(rng)
        self._ledger = ledger
        #: Logical bytes represented by one stored item (stand-in files:
        #: each sampled record is a proxy for ``logical_scale`` records).
        self.io_scale = io_scale
        self.disk_reloads = 0
        self.draws = 0
        #: In-memory items, kept as an ndarray so whole runs of draws
        #: can be served as one slice (see :meth:`draw_many`).
        self._items: np.ndarray = np.empty(0)
        self._next = 0
        self._backing_arr: Optional[np.ndarray] = None
        self._backing_len = -1
        self._resample_from_backing(charge=False)

    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Redirect disk charges (tasks re-bind ledgers between runs)."""
        self._ledger = ledger

    # ----------------------------------------------------------- structure
    @property
    def sketch_size(self) -> int:
        """Target in-memory size: ``c·√n`` (at least 1 for non-empty data)."""
        n = len(self._backing)
        if n == 0:
            return 0
        return max(1, min(n, int(math.ceil(self._c * math.sqrt(n)))))

    @property
    def remaining(self) -> int:
        return len(self._items) - self._next

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def _backing_array(self) -> np.ndarray:
        """The backing store as an ndarray (cached; rebuilt on growth)."""
        if self._backing_arr is None or self._backing_len != len(self._backing):
            self._backing_arr = np.asarray(self._backing)
            self._backing_len = len(self._backing)
        return self._backing_arr

    def _resample_from_backing(self, *, charge: bool) -> None:
        """Draw a fresh sketch from the disk copy (without replacement)."""
        size = self.sketch_size
        if size == 0:
            self._items, self._next = np.empty(0), 0
            return
        idx = self._rng.choice(len(self._backing), size=size, replace=False)
        self._items = self._backing_array()[idx]
        self._next = 0
        if charge:
            self.disk_reloads += 1
            if self._ledger is not None:
                # Commit + resample: one seek plus a sketch-sized read.
                self._ledger.charge_seeks(1)
                self._ledger.charge_disk_read(size * ITEM_BYTES
                                              * self.io_scale)

    # --------------------------------------------------------------- drawing
    def draw(self) -> Any:
        """Next random item; reloads from disk when the sketch runs dry."""
        if len(self._backing) == 0:
            raise ValueError("cannot draw from a sketch over empty data")
        if self.exhausted:
            self._resample_from_backing(charge=True)
        item = self._items[self._next]
        self._next += 1
        self.draws += 1
        return item

    def draw_many(self, count: int) -> Tuple[np.ndarray, int]:
        """``count`` sequential random items as one array, plus how many
        disk reloads the run triggered.

        Byte-identical to ``count`` calls of :meth:`draw` for any seed:
        items are served in the same order and a reload — the only RNG
        consumer — fires at exactly the same positions with the same
        arguments.  This is the batched path the vectorized delta
        maintainers use to top resamples up from Δs in one state call.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0), 0
        if len(self._backing) == 0:
            raise ValueError("cannot draw from a sketch over empty data")
        chunks = []
        reloads = 0
        left = count
        while left > 0:
            if self.exhausted:
                self._resample_from_backing(charge=True)
                reloads += 1
            take = min(left, self.remaining)
            chunks.append(self._items[self._next:self._next + take])
            self._next += take
            self.draws += take
            left -= take
        return (chunks[0] if len(chunks) == 1
                else np.concatenate(chunks)), reloads

    # -------------------------------------------------------------- refresh
    def refresh(self) -> None:
        """End-of-iteration reservoir substitution of used items (§4.1).

        Used slots are replaced by uniform picks from the backing store so
        the sketch remains a random subset; memory-only, no disk charge
        (the paper defers the disk commit to exhaustion time).
        """
        if len(self._items) == 0 or len(self._backing) == 0:
            return
        used = self._next
        # Substitute into a private copy: draw_many hands out views of
        # the current item array, which must stay immutable.
        items = self._items.copy()
        if used:
            # One array draw == `used` scalar draws (same bound, same
            # stream), so the vectorized refresh stays byte-identical.
            replacements = self._rng.integers(0, len(self._backing),
                                              size=used)
            items[:used] = self._backing_array()[replacements]
        # Reshuffle so the sequential pointer again walks a random order.
        order = self._rng.permutation(len(items))
        self._items = items[order]
        self._next = 0

    def notify_backing_grew(self) -> None:
        """Re-derive the sketch size after the backing store was extended
        (a new delta sample was appended); keeps ``c·√n`` in force."""
        if self.sketch_size > len(self._items):
            self._resample_from_backing(charge=False)
