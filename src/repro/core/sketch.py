"""Two-layer memory/disk sketch structure (paper §4.1).

Delta maintenance needs random items from the stored sample and from
each bootstrap resample, but those collections are too large for memory
and live on HDFS.  The paper's fix is a *sketch*: ``c·√n`` items drawn
without replacement and kept in memory.  Updates consume sketch items
sequentially (a sequential pick from a random subset is a random pick);
at the end of an iteration the used items are replaced via reservoir
substitution so the sketch stays a uniform subset; only when a sketch is
exhausted does the algorithm touch the disk copy — committing changes
and resampling a fresh sketch.

The constant ``c`` trades memory for update latency: "a larger c will
cost more memory space but will introduce less randomized update
latency" — the ablation benchmark sweeps it.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive

#: Simulated bytes per stored item, used to price disk access.
ITEM_BYTES = 8


class Sketch:
    """In-memory random subset of a disk-resident collection."""

    def __init__(self, backing: Sequence[Any], c: float = 4.0, *,
                 rng: Optional[np.random.Generator] = None,
                 ledger: Optional[CostLedger] = None,
                 io_scale: float = 1.0) -> None:
        check_positive("c", c)
        check_positive("io_scale", io_scale)
        self._backing = backing
        self._c = c
        self._rng = ensure_rng(rng)
        self._ledger = ledger
        #: Logical bytes represented by one stored item (stand-in files:
        #: each sampled record is a proxy for ``logical_scale`` records).
        self.io_scale = io_scale
        self.disk_reloads = 0
        self.draws = 0
        self._items: List[Any] = []
        self._next = 0
        self._resample_from_backing(charge=False)

    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Redirect disk charges (tasks re-bind ledgers between runs)."""
        self._ledger = ledger

    # ----------------------------------------------------------- structure
    @property
    def sketch_size(self) -> int:
        """Target in-memory size: ``c·√n`` (at least 1 for non-empty data)."""
        n = len(self._backing)
        if n == 0:
            return 0
        return max(1, min(n, int(math.ceil(self._c * math.sqrt(n)))))

    @property
    def remaining(self) -> int:
        return len(self._items) - self._next

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def _resample_from_backing(self, *, charge: bool) -> None:
        """Draw a fresh sketch from the disk copy (without replacement)."""
        size = self.sketch_size
        if size == 0:
            self._items, self._next = [], 0
            return
        idx = self._rng.choice(len(self._backing), size=size, replace=False)
        self._items = [self._backing[int(i)] for i in idx]
        self._next = 0
        if charge:
            self.disk_reloads += 1
            if self._ledger is not None:
                # Commit + resample: one seek plus a sketch-sized read.
                self._ledger.charge_seeks(1)
                self._ledger.charge_disk_read(size * ITEM_BYTES
                                              * self.io_scale)

    # --------------------------------------------------------------- drawing
    def draw(self) -> Any:
        """Next random item; reloads from disk when the sketch runs dry."""
        if len(self._backing) == 0:
            raise ValueError("cannot draw from a sketch over empty data")
        if self.exhausted:
            self._resample_from_backing(charge=True)
        item = self._items[self._next]
        self._next += 1
        self.draws += 1
        return item

    # -------------------------------------------------------------- refresh
    def refresh(self) -> None:
        """End-of-iteration reservoir substitution of used items (§4.1).

        Used slots are replaced by uniform picks from the backing store so
        the sketch remains a random subset; memory-only, no disk charge
        (the paper defers the disk commit to exhaustion time).
        """
        if not self._items or len(self._backing) == 0:
            return
        used = self._next
        for slot in range(used):
            replacement = int(self._rng.integers(0, len(self._backing)))
            self._items[slot] = self._backing[replacement]
        # Reshuffle so the sequential pointer again walks a random order.
        order = self._rng.permutation(len(self._items))
        self._items = [self._items[int(i)] for i in order]
        self._next = 0

    def notify_backing_grew(self) -> None:
        """Re-derive the sketch size after the backing store was extended
        (a new delta sample was appended); keeps ``c·√n`` in force."""
        if self.sketch_size > len(self._items):
            self._resample_from_backing(charge=False)
