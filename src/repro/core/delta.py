"""Inter-iteration delta maintenance of bootstrap resamples (paper §4.1).

When EARL enlarges the sample ``s`` (size n) with a delta ``Δs`` into
``s' = s + Δs`` (size n'), a fresh bootstrap of ``s'`` would redo all
``B × n'`` draws and recompute the user's job from scratch.  Instead,
each existing resample ``b`` is *updated*:

1. draw ``k = |b'_s|`` — how many of the n' positions come from the old
   sample — from ``Binomial(n', n/n')`` (Eq. 2), or from its Gaussian
   approximation ``N(n, n(1-n/n'))`` (Eq. 3) in the optimized algorithm;
2. if ``k < n`` randomly delete ``n-k`` items from ``b``; if ``k > n``
   add ``k-n`` random items drawn from ``s``;
3. add ``n'-k`` items randomly drawn from ``Δs``.

The result is distributed exactly like a fresh resample of ``s'`` (the
multinomial thinning argument), but costs only O(|Δs|) work per
resample.  The **naive** maintainer hits the disk-resident ``s``/``b``
for every random access; the **optimized** maintainer goes through the
§4.1 two-layer sketches and touches disk only on sketch exhaustion.

Vectorized kernel
-----------------
The O(|Δs|)-per-resample accounting only pays off if the constant per
item is small, so the maintainers run a *vectorized* kernel by default:
index draws are taken as whole arrays (``rng.integers(..., size=m)``,
batched sketch serves) and estimator states are updated through
``add_many``/``remove_many`` instead of one Python call per item.  The
kernel consumes the random stream in exactly the same order as the
scalar reference (``vectorized=False``), so drawn items, resample
contents and :class:`MaintenanceCounters` are byte-identical for any
seed; only the estimator-state arithmetic is reassociated (batch moment
merges), which can move finalized estimates by floating-point rounding.
See DESIGN.md "Vectorized kernel & data plane".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.obs.metrics import REGISTRY as _METRICS
from repro.core.estimators import (
    EstimatorState,
    FunctionalState,
    Statistic,
    StatisticLike,
    get_statistic,
)
from repro.core.sketch import ITEM_BYTES, Sketch
from repro.exec.executor import Executor
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive, check_positive_int

#: Maintainer selection values.
MAINTENANCE_NAIVE = "naive"
MAINTENANCE_OPTIMIZED = "optimized"
MAINTENANCE_NONE = "none"


@dataclass
class MaintenanceCounters:
    """Work accounting used by the Fig. 6 / Fig. 10 benchmarks."""

    state_ops: int = 0        # add/remove operations on estimator states
    disk_accesses: int = 0    # random accesses charged to disk
    sketch_draws: int = 0     # draws served from memory-resident sketches
    full_rebuilds: int = 0    # resamples rebuilt from scratch
    _published: Dict[str, int] = field(default_factory=dict, repr=False,
                                       compare=False)

    def merge(self, other: "MaintenanceCounters") -> None:
        self.state_ops += other.state_ops
        self.disk_accesses += other.disk_accesses
        self.sketch_draws += other.sketch_draws
        self.full_rebuilds += other.full_rebuilds

    def publish(self) -> None:
        """Mirror this bag into the metrics registry as
        ``repro_maintenance_ops_total{op=...}``.  Delta-tracked, so
        round-boundary republishing never double counts.  No-op when
        telemetry is disabled."""
        if not _METRICS.enabled:
            return
        for op in ("state_ops", "disk_accesses", "sketch_draws",
                   "full_rebuilds"):
            value = getattr(self, op)
            delta = value - self._published.get(op, 0)
            if delta > 0:
                _METRICS.counter(
                    "repro_maintenance_ops_total", labels={"op": op},
                    help="delta-maintenance work, by operation kind",
                ).inc(delta)
                self._published[op] = value


class _ItemBuffer:
    """Growable ndarray-backed segment for vectorized resamples.

    Presents the slice of the list API the maintainers need — ``len``,
    indexing (for the swap-pop delete), ``append``, ``pop`` — while a
    whole batch lands as one array copy (:meth:`extend_array`) instead
    of per-item list appends.  Scalar resamples keep plain Python lists,
    so the ``vectorized=False`` reference stays the original code path.

    ``pop``/indexing return scalars for 1-D buffers and row *copies*
    for 2-D ones — never views, so a swap-pop overwriting a slot can't
    retroactively change an item already handed out.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self) -> None:
        self._buf: Optional[np.ndarray] = None
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def _reserve(self, extra: int, template: np.ndarray) -> None:
        if self._buf is None:
            cap = max(16, 2 * extra)
            self._buf = np.empty((cap,) + template.shape[1:],
                                 dtype=template.dtype)
        elif self._len + extra > len(self._buf):
            cap = max(2 * len(self._buf), self._len + extra)
            grown = np.empty((cap,) + self._buf.shape[1:],
                             dtype=self._buf.dtype)
            grown[:self._len] = self._buf[:self._len]
            self._buf = grown

    def extend_array(self, items: np.ndarray) -> None:
        count = len(items)
        if count == 0:
            return
        items = np.asarray(items)
        self._reserve(count, items)
        self._buf[self._len:self._len + count] = items
        self._len += count

    def append(self, item: Any) -> None:
        self.extend_array(np.asarray(item).reshape((1,) + np.shape(item)))

    def pop(self) -> Any:
        if self._len == 0:
            raise IndexError("pop from empty segment")
        self._len -= 1
        item = self._buf[self._len]
        return item.copy() if isinstance(item, np.ndarray) else item

    def _index(self, idx: int) -> int:
        if idx < 0:
            idx += self._len
        if not 0 <= idx < self._len:
            raise IndexError("segment index out of range")
        return idx

    def __getitem__(self, idx: int) -> Any:
        item = self._buf[self._index(idx)]
        return item.copy() if isinstance(item, np.ndarray) else item

    def __setitem__(self, idx: int, value: Any) -> None:
        self._buf[self._index(idx)] = value

    def __iter__(self):
        return iter(self.as_array())

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        arr = self.as_array()
        return arr if dtype is None else arr.astype(dtype)

    def as_array(self) -> np.ndarray:
        if self._buf is None:
            return np.empty(0)
        return self._buf[:self._len]


class Resample:
    """One bootstrap resample: items partitioned by delta-generation.

    After the i-th iteration a resample is partitioned into
    ``{b_Δs_k, k <= i}`` (§4.1) — the items drawn from each delta sample.
    Keeping the partition explicit lets the maintainer delete uniformly
    (segment chosen proportionally to its size) and lets the optimized
    algorithm keep one sketch per segment.

    ``vectorized`` resamples store segments in ndarray-backed
    :class:`_ItemBuffer` chunks (batch appends are array copies); the
    default keeps plain Python lists — the scalar reference layout.
    """

    __slots__ = ("state", "segments", "_vectorized")

    def __init__(self, state: EstimatorState,
                 vectorized: bool = False) -> None:
        self.state = state
        self.segments: List[Any] = []
        self._vectorized = vectorized

    @property
    def size(self) -> int:
        return sum(len(seg) for seg in self.segments)

    def new_segment(self) -> None:
        self.segments.append(_ItemBuffer() if self._vectorized else [])

    def add(self, item: Any, segment: int) -> None:
        self.segments[segment].append(item)
        self.state.add(item)

    def add_many(self, items: np.ndarray, segment: int) -> None:
        """Append a whole batch to one segment with a single state call.

        Equivalent to ``for item in items: self.add(item, segment)`` —
        same items in the same order — but the segment grows by one
        array copy and the estimator state is updated once via
        ``add_many``.
        """
        if len(items) == 0:
            return
        target = self.segments[segment]
        if isinstance(target, _ItemBuffer):
            target.extend_array(items)
        elif items.ndim == 1:
            target.extend(items.tolist())
        else:  # row items into a list segment: keep ndarray rows
            target.extend(list(items))
        self.state.add_many(items)

    def _pop_random(self, rng: np.random.Generator) -> Any:
        """Swap-pop a uniformly random item, *without* updating the
        state (callers batch the state update)."""
        total = self.size
        if total == 0:
            raise ValueError("cannot remove from an empty resample")
        flat = int(rng.integers(0, total))
        for segment in self.segments:
            if flat < len(segment):
                idx = flat
                item = segment[idx]
                segment[idx] = segment[-1]
                segment.pop()
                return item
            flat -= len(segment)
        raise AssertionError("unreachable: index inside total size")

    def remove_random(self, rng: np.random.Generator) -> Any:
        """Delete a uniformly random item (swap-pop within its segment)."""
        item = self._pop_random(rng)
        self.state.remove(item)
        return item

    def remove_random_many(self, rng: np.random.Generator,
                           count: int) -> List[Any]:
        """Delete ``count`` uniformly random items with one state call.

        The index draws are the same scalar ``rng.integers(0, size)``
        sequence as ``count`` :meth:`remove_random` calls (the shrinking
        bound makes them inherently sequential), so the random stream —
        and the deleted items — are byte-identical; only the state
        update is batched through ``remove_many``.
        """
        removed = [self._pop_random(rng) for _ in range(count)]
        if removed:
            self.state.remove_many(np.asarray(removed))
        return removed

    def estimate(self) -> float:
        return self.state.result()


class _BaseMaintainer:
    """Shared logic for naive and sketch-based maintainers.

    ``vectorized`` selects between the batched kernel (default) and the
    item-at-a-time scalar reference.  Both consume the random stream in
    the same order, so they draw the same items and report the same
    counters; the kernels differ only in how the estimator state folds
    a batch in (see the module docstring).
    """

    def __init__(self, statistic: Statistic, *,
                 rng: np.random.Generator,
                 ledger: Optional[CostLedger],
                 io_scale: float = 1.0,
                 vectorized: bool = True) -> None:
        self._stat = statistic
        self._rng = rng
        self._ledger = ledger
        self.io_scale = io_scale
        self._vectorized = vectorized
        self.counters = MaintenanceCounters()

    # Hooks the two algorithms specialize --------------------------------
    def _draw_k(self, n_old: int, n_new: int) -> int:
        """Draw ``|b'_s|`` — the old-sample share of the updated resample."""
        raise NotImplementedError

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the stored old sample, with its segment index."""
        raise NotImplementedError

    def _draw_from_delta(self) -> Any:
        """Uniform item of the current delta sample."""
        raise NotImplementedError

    def on_delta(self, delta: Sequence[Any]) -> None:
        """Called once per iteration before resamples are updated."""
        raise NotImplementedError

    def end_iteration(self) -> None:
        """Called once per iteration after all resamples were updated."""

    # Batched draw hooks --------------------------------------------------
    # Defaults drive the scalar draw hooks but fold the state update into
    # one ``add_many`` call; maintainers override where whole-array draws
    # are possible without changing the random stream.
    def _add_from_old_batch(self, resample: Resample, count: int) -> None:
        if count == 0:
            return
        items = []
        targets = []
        for _ in range(count):
            item, segment = self._draw_from_old_with_segment(resample)
            items.append(item)
            targets.append(segment)
        arr = np.asarray(items)
        target_arr = np.asarray(targets)
        for seg in np.unique(target_arr):
            resample.segments[int(seg)].extend_array(arr[target_arr == seg])
        resample.state.add_many(arr)

    def _add_from_delta_batch(self, resample: Resample, segment: int,
                              count: int) -> None:
        if count == 0:
            return
        items = np.asarray([self._draw_from_delta() for _ in range(count)])
        resample.add_many(items, segment)

    # Common update -------------------------------------------------------
    def update(self, resample: Resample, n_old: int, n_new: int,
               delta_size: int) -> None:
        """Apply the three-step §4.1 update to one resample."""
        if n_new <= n_old:
            raise ValueError("the sample must grow between iterations")
        k = int(min(max(self._draw_k(n_old, n_new), 0), n_new))
        # Step 2: reconcile the old-sample part of the resample to size k.
        if k < n_old:
            count = n_old - k
            if self._vectorized:
                resample.remove_random_many(self._rng, count)
            else:
                for _ in range(count):
                    resample.remove_random(self._rng)
            self.counters.state_ops += count
        elif k > n_old:
            count = k - n_old
            if self._vectorized:
                self._add_from_old_batch(resample, count)
            else:
                for _ in range(count):
                    item, segment = self._draw_from_old_with_segment(resample)
                    resample.segments[segment].append(item)
                    resample.state.add(item)
            self.counters.state_ops += count
        # Step 3: top up to n_new with draws from the delta sample.
        resample.new_segment()
        new_segment = len(resample.segments) - 1
        count = n_new - k
        if self._vectorized:
            self._add_from_delta_batch(resample, new_segment, count)
        else:
            for _ in range(count):
                item = self._draw_from_delta()
                resample.add(item, new_segment)
        self.counters.state_ops += count


class NaiveMaintainer(_BaseMaintainer):
    """The paper's first algorithm: exact binomial, direct HDFS access.

    Every random draw from the stored sample is a disk access ("the disk
    I/O cost can be a major performance bottleneck", §4.1); the cost
    model charges one seek plus one item read per access.
    """

    def __init__(self, statistic: Statistic, *, rng: np.random.Generator,
                 ledger: Optional[CostLedger],
                 io_scale: float = 1.0,
                 vectorized: bool = True) -> None:
        super().__init__(statistic, rng=rng, ledger=ledger,
                         io_scale=io_scale, vectorized=vectorized)
        self._old_segments: List[List[Any]] = []
        self._old_flat: Optional[np.ndarray] = None
        self._old_starts: Optional[np.ndarray] = None

    def on_delta(self, delta: Sequence[Any]) -> None:
        self._current_delta = list(delta)
        self._delta_arr = np.asarray(self._current_delta)

    def end_iteration(self) -> None:
        self._old_segments.append(self._current_delta)
        self._old_flat = None  # old-sample layout changed; rebuild lazily

    def _old_layout(self):
        """Flattened stored sample + segment start offsets (cached —
        the stored segments are fixed while resamples are updated)."""
        if self._old_flat is None:
            self._old_flat = np.concatenate(
                [np.asarray(seg) for seg in self._old_segments])
            sizes = [len(seg) for seg in self._old_segments]
            self._old_starts = np.concatenate(
                [[0], np.cumsum(sizes[:-1])]).astype(np.int64)
        return self._old_flat, self._old_starts

    def _draw_k(self, n_old: int, n_new: int) -> int:
        return int(self._rng.binomial(n_new, n_old / n_new))

    def _charge_disk(self, count: int = 1) -> None:
        self.counters.disk_accesses += count
        if self._ledger is not None:
            self._ledger.charge_seeks(count)
            self._ledger.charge_disk_read(count * ITEM_BYTES * self.io_scale)

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the stored old sample (disk-resident)."""
        self._charge_disk()
        sizes = [len(seg) for seg in self._old_segments]
        total = sum(sizes)
        flat = int(self._rng.integers(0, total))
        for seg_idx, seg in enumerate(self._old_segments):
            if flat < len(seg):
                return seg[flat], min(seg_idx, len(resample.segments) - 1)
            flat -= len(seg)
        raise AssertionError("unreachable")

    def _draw_from_delta(self) -> Any:
        self._charge_disk()
        idx = int(self._rng.integers(0, len(self._current_delta)))
        return self._current_delta[idx]

    # Vectorized paths: one fixed-bound ``integers`` array call replaces
    # the same number of scalar calls — the random stream is unchanged.
    def _add_from_old_batch(self, resample: Resample, count: int) -> None:
        if count == 0:
            return
        flat, starts = self._old_layout()
        self._charge_disk(count)
        idx = self._rng.integers(0, len(flat), size=count)
        items = flat[idx]
        seg_ids = np.searchsorted(starts, idx, side="right") - 1
        np.minimum(seg_ids, len(resample.segments) - 1, out=seg_ids)
        for seg in np.unique(seg_ids):
            resample.segments[int(seg)].extend_array(items[seg_ids == seg])
        resample.state.add_many(items)

    def _add_from_delta_batch(self, resample: Resample, segment: int,
                              count: int) -> None:
        if count == 0:
            return
        self._charge_disk(count)
        idx = self._rng.integers(0, len(self._current_delta), size=count)
        resample.add_many(self._delta_arr[idx], segment)


class SketchMaintainer(_BaseMaintainer):
    """The paper's optimized algorithm: Gaussian ``k``, sketched access.

    * ``k`` is drawn from ``N(n, n(1-n/n'))`` (Eq. 3) — by the 3-sigma
      rule nearly all updates stay within ``±3√n`` of the mean, so the
      per-iteration work is tightly concentrated;
    * random items come from in-memory sketches (one per delta sample,
      ``c·√n`` items each); disk is touched only on sketch exhaustion;
    * at iteration end, sketches are refreshed by reservoir substitution.
    """

    def __init__(self, statistic: Statistic, *, rng: np.random.Generator,
                 ledger: Optional[CostLedger], c: float = 4.0,
                 io_scale: float = 1.0,
                 vectorized: bool = True) -> None:
        super().__init__(statistic, rng=rng, ledger=ledger,
                         io_scale=io_scale, vectorized=vectorized)
        check_positive("c", c)
        self._c = c
        self._delta_store: List[List[Any]] = []
        self._delta_sketches: List[Sketch] = []
        self._old_probs_cache: Optional[np.ndarray] = None

    def on_delta(self, delta: Sequence[Any]) -> None:
        stored = list(delta)
        self._delta_store.append(stored)
        self._delta_sketches.append(
            Sketch(stored, self._c, rng=self._rng, ledger=self._ledger,
                   io_scale=self.io_scale))

    def end_iteration(self) -> None:
        for sketch in self._delta_sketches:
            sketch.refresh()

    def _draw_k(self, n_old: int, n_new: int) -> int:
        mean = n_old
        var = n_old * (1.0 - n_old / n_new)
        k = self._rng.normal(mean, math.sqrt(max(var, 1e-12)))
        return int(round(k))

    def _sketch_draw(self, sketch: Sketch) -> Any:
        before = sketch.disk_reloads
        item = sketch.draw()
        if sketch.disk_reloads > before:
            self.counters.disk_accesses += 1
        else:
            self.counters.sketch_draws += 1
        return item

    def _old_probs(self) -> np.ndarray:
        """Old-segment selection weights (cached: the stores are fixed
        while one iteration's resamples are updated)."""
        n_old_stores = len(self._delta_store) - 1
        if self._old_probs_cache is None \
                or len(self._old_probs_cache) != n_old_stores:
            sizes = np.array([len(store)
                              for store in self._delta_store[:-1]],
                             dtype=float)
            self._old_probs_cache = sizes / sizes.sum()
        return self._old_probs_cache

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the old sample via the per-delta sketches.

        Segment chosen proportionally to its share of the old sample,
        then a sketch draw within the segment — the composition is a
        uniform draw over the whole old sample.
        """
        probs = self._old_probs()
        seg_idx = int(self._rng.choice(len(probs), p=probs))
        item = self._sketch_draw(self._delta_sketches[seg_idx])
        return item, min(seg_idx, len(resample.segments) - 1)

    def _draw_from_delta(self) -> Any:
        return self._sketch_draw(self._delta_sketches[-1])

    # Vectorized delta top-up: the whole run of draws is served as one
    # sketch slice sequence (:meth:`Sketch.draw_many` is byte-identical
    # to the scalar loop, reloads included).  Old-sample additions keep
    # the scalar path — their per-item segment choice interleaves with
    # sketch reloads on the shared stream, so batching them would
    # reorder draws; they are O(√n) items, far off the hot path.
    def _add_from_delta_batch(self, resample: Resample, segment: int,
                              count: int) -> None:
        if count == 0:
            return
        items, reloads = self._delta_sketches[-1].draw_many(count)
        self.counters.disk_accesses += reloads
        self.counters.sketch_draws += count - reloads
        resample.add_many(items, segment)


class ResampleSet:
    """``B`` delta-maintained bootstrap resamples over a growing sample.

    This is the reduce-side engine of EARL's accuracy-estimation stage:
    initialize with the first sample, :meth:`expand` with each delta,
    and read the result distribution via :meth:`estimates` after every
    iteration.  ``maintenance`` selects §4.1's naive or optimized
    algorithm, or ``"none"`` to rebuild every resample from scratch each
    iteration (the stock-bootstrap baseline of Fig. 6/10).

    ``vectorized`` (default) runs the NumPy batch kernel; ``False``
    selects the item-at-a-time scalar reference.  Both consume the
    random stream identically — same drawn items, same
    :class:`MaintenanceCounters` for any seed — and differ only in
    floating-point reassociation of the estimator-state arithmetic
    (``benchmarks/bench_kernel.py`` measures the gap in throughput).
    """

    def __init__(self, statistic: StatisticLike, B: int, *,
                 maintenance: str = MAINTENANCE_OPTIMIZED,
                 sketch_c: float = 4.0,
                 seed: SeedLike = None,
                 ledger: Optional[CostLedger] = None,
                 io_scale: float = 1.0,
                 vectorized: bool = True) -> None:
        check_positive_int("B", B)
        if maintenance not in (MAINTENANCE_NAIVE, MAINTENANCE_OPTIMIZED,
                               MAINTENANCE_NONE):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        check_positive("io_scale", io_scale)
        self._stat = get_statistic(statistic)
        self.B = B
        self._mode = maintenance
        self._rng = ensure_rng(seed)
        self._ledger = ledger
        self._io_scale = io_scale
        self._vectorized = vectorized
        self._sample: List[Any] = []
        self._resamples: List[Resample] = []
        self.counters = MaintenanceCounters()
        if maintenance == MAINTENANCE_NAIVE:
            self._maintainer: Optional[_BaseMaintainer] = NaiveMaintainer(
                self._stat, rng=self._rng, ledger=ledger, io_scale=io_scale,
                vectorized=vectorized)
        elif maintenance == MAINTENANCE_OPTIMIZED:
            self._maintainer = SketchMaintainer(
                self._stat, rng=self._rng, ledger=ledger, c=sketch_c,
                io_scale=io_scale, vectorized=vectorized)
        else:
            self._maintainer = None

    # ------------------------------------------------------------ lifecycle
    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Re-bind the cost ledger (a reduce task charges maintenance I/O
        to its own ledger, which changes between iterations)."""
        self._ledger = ledger
        if self._maintainer is not None:
            self._maintainer._ledger = ledger
            sketches = getattr(self._maintainer, "_delta_sketches", None)
            if sketches:
                for sketch in sketches:
                    sketch.set_ledger(ledger)

    def set_io_scale(self, io_scale: float) -> None:
        """Re-bind the logical scale of stored items (stand-in files)."""
        check_positive("io_scale", io_scale)
        self._io_scale = io_scale
        if self._maintainer is not None:
            self._maintainer.io_scale = io_scale
            sketches = getattr(self._maintainer, "_delta_sketches", None)
            if sketches:
                for sketch in sketches:
                    sketch.io_scale = io_scale

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    @property
    def sample(self) -> List[Any]:
        return list(self._sample)

    def _fresh_resample(self, items: List[Any],
                        items_arr: Optional[np.ndarray],
                        n: int) -> Resample:
        """One fresh bootstrap resample: ``n`` draws with replacement
        from ``items``, consuming this set's stream.  The single
        construction path shared by :meth:`initialize` and the
        no-maintainer rebuild, so the two can never drift apart.
        ``items_arr`` is the vectorized kernel's array view of
        ``items`` (``None`` on the scalar path)."""
        resample = Resample(self._stat.make_state(),
                            vectorized=self._vectorized)
        resample.new_segment()
        idx = self._rng.integers(0, n, size=n)
        if self._vectorized:
            resample.add_many(items_arr[idx], 0)
        else:
            for i in idx:
                resample.add(items[int(i)], 0)
        self.counters.state_ops += n
        return resample

    def initialize(self, sample: Sequence[Any]) -> None:
        """First iteration: the initial sample is the first delta (§4.1:
        "we can treat the initial sample as a delta sample added to an
        empty set")."""
        if self._sample:
            raise RuntimeError("ResampleSet already initialized")
        if len(sample) == 0:
            raise ValueError("initial sample cannot be empty")
        items = list(sample)
        self._sample.extend(items)
        if self._maintainer is not None:
            self._maintainer.on_delta(items)
        n = len(items)
        items_arr = np.asarray(sample) if self._vectorized else None
        for _ in range(self.B):
            self._resamples.append(self._fresh_resample(items, items_arr, n))
        if self._maintainer is not None:
            self._maintainer.end_iteration()
            self.counters.merge(self._maintainer.counters)
            self._maintainer.counters = MaintenanceCounters()
        self.counters.publish()

    def expand(self, delta: Sequence[Any]) -> None:
        """Grow the sample by ``delta`` and update every resample."""
        if not self._sample:
            raise RuntimeError("initialize() must be called first")
        delta_items = list(delta)
        if len(delta_items) == 0:
            return
        n_old = len(self._sample)
        n_new = n_old + len(delta_items)
        self._sample.extend(delta_items)

        if self._maintainer is None:
            # Baseline: throw everything away and bootstrap s' afresh.
            self._resamples = []
            items = self._sample
            items_arr = np.asarray(items) if self._vectorized else None
            for _ in range(self.B):
                self._resamples.append(
                    self._fresh_resample(items, items_arr, n_new))
                self.counters.full_rebuilds += 1
            if self._ledger is not None:
                # Re-reading the whole stored sample for every rebuild.
                self._ledger.charge_seeks(self.B)
                self._ledger.charge_disk_read(
                    self.B * n_new * ITEM_BYTES * self._io_scale)
            self.counters.publish()
            return

        self._maintainer.on_delta(delta_items)
        for resample in self._resamples:
            self._maintainer.update(resample, n_old, n_new, len(delta_items))
        self._maintainer.end_iteration()
        self.counters.merge(self._maintainer.counters)
        self._maintainer.counters = MaintenanceCounters()
        self.counters.publish()

    # ------------------------------------------------------------- results
    def estimates(self, executor: Optional[Executor] = None) -> np.ndarray:
        """Per-resample statistic values (the result distribution).

        ``executor`` optionally fans the ``B`` evaluations out over a
        parallel backend — but only when evaluation is actually work:
        registered statistics keep O(1)-readable states (running mean,
        sorted multiset, …) for which pool dispatch (and, on process
        pools, pickling each resample) can only lose, so those stay on
        the plain loop.  :class:`~repro.core.estimators.FunctionalState`
        — the arbitrary-user-function fallback, whose ``result()``
        re-evaluates the whole resample — is the case that fans out.
        Either way the result is identical on every backend (evaluation
        is a pure read; order is preserved by
        :meth:`~repro.exec.Executor.map`); the *maintenance* of the
        resamples stays sequential regardless — §4.1's delta updates
        share one RNG stream by design.
        """
        if not self._resamples:
            raise RuntimeError("no resamples yet; call initialize()")
        if executor is not None and executor.is_parallel \
                and isinstance(self._resamples[0].state, FunctionalState):
            return np.array(executor.map(_resample_estimate, self._resamples))
        return np.array([r.estimate() for r in self._resamples])

    def resample_sizes(self) -> List[int]:
        return [r.size for r in self._resamples]


def _resample_estimate(resample: Resample) -> float:
    """Module-level accessor so process pools can pickle it by reference."""
    return resample.estimate()
