"""Inter-iteration delta maintenance of bootstrap resamples (paper §4.1).

When EARL enlarges the sample ``s`` (size n) with a delta ``Δs`` into
``s' = s + Δs`` (size n'), a fresh bootstrap of ``s'`` would redo all
``B × n'`` draws and recompute the user's job from scratch.  Instead,
each existing resample ``b`` is *updated*:

1. draw ``k = |b'_s|`` — how many of the n' positions come from the old
   sample — from ``Binomial(n', n/n')`` (Eq. 2), or from its Gaussian
   approximation ``N(n, n(1-n/n'))`` (Eq. 3) in the optimized algorithm;
2. if ``k < n`` randomly delete ``n-k`` items from ``b``; if ``k > n``
   add ``k-n`` random items drawn from ``s``;
3. add ``n'-k`` items randomly drawn from ``Δs``.

The result is distributed exactly like a fresh resample of ``s'`` (the
multinomial thinning argument), but costs only O(|Δs|) work per
resample.  The **naive** maintainer hits the disk-resident ``s``/``b``
for every random access; the **optimized** maintainer goes through the
§4.1 two-layer sketches and touches disk only on sketch exhaustion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.core.estimators import (
    EstimatorState,
    FunctionalState,
    Statistic,
    StatisticLike,
    get_statistic,
)
from repro.core.sketch import ITEM_BYTES, Sketch
from repro.exec.executor import Executor
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive, check_positive_int

#: Maintainer selection values.
MAINTENANCE_NAIVE = "naive"
MAINTENANCE_OPTIMIZED = "optimized"
MAINTENANCE_NONE = "none"


@dataclass
class MaintenanceCounters:
    """Work accounting used by the Fig. 6 / Fig. 10 benchmarks."""

    state_ops: int = 0        # add/remove operations on estimator states
    disk_accesses: int = 0    # random accesses charged to disk
    sketch_draws: int = 0     # draws served from memory-resident sketches
    full_rebuilds: int = 0    # resamples rebuilt from scratch

    def merge(self, other: "MaintenanceCounters") -> None:
        self.state_ops += other.state_ops
        self.disk_accesses += other.disk_accesses
        self.sketch_draws += other.sketch_draws
        self.full_rebuilds += other.full_rebuilds


class Resample:
    """One bootstrap resample: items partitioned by delta-generation.

    After the i-th iteration a resample is partitioned into
    ``{b_Δs_k, k <= i}`` (§4.1) — the items drawn from each delta sample.
    Keeping the partition explicit lets the maintainer delete uniformly
    (segment chosen proportionally to its size) and lets the optimized
    algorithm keep one sketch per segment.
    """

    __slots__ = ("state", "segments")

    def __init__(self, state: EstimatorState) -> None:
        self.state = state
        self.segments: List[List[Any]] = []

    @property
    def size(self) -> int:
        return sum(len(seg) for seg in self.segments)

    def new_segment(self) -> None:
        self.segments.append([])

    def add(self, item: Any, segment: int) -> None:
        self.segments[segment].append(item)
        self.state.add(item)

    def remove_random(self, rng: np.random.Generator) -> Any:
        """Delete a uniformly random item (swap-pop within its segment)."""
        total = self.size
        if total == 0:
            raise ValueError("cannot remove from an empty resample")
        flat = int(rng.integers(0, total))
        for segment in self.segments:
            if flat < len(segment):
                idx = flat
                item = segment[idx]
                segment[idx] = segment[-1]
                segment.pop()
                self.state.remove(item)
                return item
            flat -= len(segment)
        raise AssertionError("unreachable: index inside total size")

    def estimate(self) -> float:
        return self.state.result()


class _BaseMaintainer:
    """Shared logic for naive and sketch-based maintainers."""

    def __init__(self, statistic: Statistic, *,
                 rng: np.random.Generator,
                 ledger: Optional[CostLedger],
                 io_scale: float = 1.0) -> None:
        self._stat = statistic
        self._rng = rng
        self._ledger = ledger
        self.io_scale = io_scale
        self.counters = MaintenanceCounters()

    # Hooks the two algorithms specialize --------------------------------
    def _draw_k(self, n_old: int, n_new: int) -> int:
        """Draw ``|b'_s|`` — the old-sample share of the updated resample."""
        raise NotImplementedError

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the stored old sample, with its segment index."""
        raise NotImplementedError

    def _draw_from_delta(self) -> Any:
        """Uniform item of the current delta sample."""
        raise NotImplementedError

    def on_delta(self, delta: Sequence[Any]) -> None:
        """Called once per iteration before resamples are updated."""
        raise NotImplementedError

    def end_iteration(self) -> None:
        """Called once per iteration after all resamples were updated."""

    # Common update -------------------------------------------------------
    def update(self, resample: Resample, n_old: int, n_new: int,
               delta_size: int) -> None:
        """Apply the three-step §4.1 update to one resample."""
        if n_new <= n_old:
            raise ValueError("the sample must grow between iterations")
        k = int(min(max(self._draw_k(n_old, n_new), 0), n_new))
        # Step 2: reconcile the old-sample part of the resample to size k.
        if k < n_old:
            for _ in range(n_old - k):
                resample.remove_random(self._rng)
                self.counters.state_ops += 1
        elif k > n_old:
            for _ in range(k - n_old):
                item, segment = self._draw_from_old_with_segment(resample)
                resample.segments[segment].append(item)
                resample.state.add(item)
                self.counters.state_ops += 1
        # Step 3: top up to n_new with draws from the delta sample.
        resample.new_segment()
        new_segment = len(resample.segments) - 1
        for _ in range(n_new - k):
            item = self._draw_from_delta()
            resample.add(item, new_segment)
            self.counters.state_ops += 1


class NaiveMaintainer(_BaseMaintainer):
    """The paper's first algorithm: exact binomial, direct HDFS access.

    Every random draw from the stored sample is a disk access ("the disk
    I/O cost can be a major performance bottleneck", §4.1); the cost
    model charges one seek plus one item read per access.
    """

    def __init__(self, statistic: Statistic, *, rng: np.random.Generator,
                 ledger: Optional[CostLedger],
                 io_scale: float = 1.0) -> None:
        super().__init__(statistic, rng=rng, ledger=ledger,
                         io_scale=io_scale)
        self._old_segments: List[List[Any]] = []

    def on_delta(self, delta: Sequence[Any]) -> None:
        self._current_delta = list(delta)

    def end_iteration(self) -> None:
        self._old_segments.append(self._current_delta)

    def _draw_k(self, n_old: int, n_new: int) -> int:
        return int(self._rng.binomial(n_new, n_old / n_new))

    def _charge_disk(self) -> None:
        self.counters.disk_accesses += 1
        if self._ledger is not None:
            self._ledger.charge_seeks(1)
            self._ledger.charge_disk_read(ITEM_BYTES * self.io_scale)

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the stored old sample (disk-resident)."""
        self._charge_disk()
        sizes = [len(seg) for seg in self._old_segments]
        total = sum(sizes)
        flat = int(self._rng.integers(0, total))
        for seg_idx, seg in enumerate(self._old_segments):
            if flat < len(seg):
                return seg[flat], min(seg_idx, len(resample.segments) - 1)
            flat -= len(seg)
        raise AssertionError("unreachable")

    def _draw_from_delta(self) -> Any:
        self._charge_disk()
        idx = int(self._rng.integers(0, len(self._current_delta)))
        return self._current_delta[idx]


class SketchMaintainer(_BaseMaintainer):
    """The paper's optimized algorithm: Gaussian ``k``, sketched access.

    * ``k`` is drawn from ``N(n, n(1-n/n'))`` (Eq. 3) — by the 3-sigma
      rule nearly all updates stay within ``±3√n`` of the mean, so the
      per-iteration work is tightly concentrated;
    * random items come from in-memory sketches (one per delta sample,
      ``c·√n`` items each); disk is touched only on sketch exhaustion;
    * at iteration end, sketches are refreshed by reservoir substitution.
    """

    def __init__(self, statistic: Statistic, *, rng: np.random.Generator,
                 ledger: Optional[CostLedger], c: float = 4.0,
                 io_scale: float = 1.0) -> None:
        super().__init__(statistic, rng=rng, ledger=ledger,
                         io_scale=io_scale)
        check_positive("c", c)
        self._c = c
        self._delta_store: List[List[Any]] = []
        self._delta_sketches: List[Sketch] = []

    def on_delta(self, delta: Sequence[Any]) -> None:
        stored = list(delta)
        self._delta_store.append(stored)
        self._delta_sketches.append(
            Sketch(stored, self._c, rng=self._rng, ledger=self._ledger,
                   io_scale=self.io_scale))

    def end_iteration(self) -> None:
        for sketch in self._delta_sketches:
            sketch.refresh()

    def _draw_k(self, n_old: int, n_new: int) -> int:
        mean = n_old
        var = n_old * (1.0 - n_old / n_new)
        k = self._rng.normal(mean, math.sqrt(max(var, 1e-12)))
        return int(round(k))

    def _sketch_draw(self, sketch: Sketch) -> Any:
        before = sketch.disk_reloads
        item = sketch.draw()
        if sketch.disk_reloads > before:
            self.counters.disk_accesses += 1
        else:
            self.counters.sketch_draws += 1
        return item

    def _draw_from_old_with_segment(self, resample: Resample):
        """Uniform item of the old sample via the per-delta sketches.

        Segment chosen proportionally to its share of the old sample,
        then a sketch draw within the segment — the composition is a
        uniform draw over the whole old sample.
        """
        old_stores = self._delta_store[:-1]
        total = sum(len(store) for store in old_stores)
        probs = [len(store) / total for store in old_stores]
        seg_idx = int(self._rng.choice(len(old_stores), p=probs))
        item = self._sketch_draw(self._delta_sketches[seg_idx])
        return item, min(seg_idx, len(resample.segments) - 1)

    def _draw_from_delta(self) -> Any:
        return self._sketch_draw(self._delta_sketches[-1])


class ResampleSet:
    """``B`` delta-maintained bootstrap resamples over a growing sample.

    This is the reduce-side engine of EARL's accuracy-estimation stage:
    initialize with the first sample, :meth:`expand` with each delta,
    and read the result distribution via :meth:`estimates` after every
    iteration.  ``maintenance`` selects §4.1's naive or optimized
    algorithm, or ``"none"`` to rebuild every resample from scratch each
    iteration (the stock-bootstrap baseline of Fig. 6/10).
    """

    def __init__(self, statistic: StatisticLike, B: int, *,
                 maintenance: str = MAINTENANCE_OPTIMIZED,
                 sketch_c: float = 4.0,
                 seed: SeedLike = None,
                 ledger: Optional[CostLedger] = None,
                 io_scale: float = 1.0) -> None:
        check_positive_int("B", B)
        if maintenance not in (MAINTENANCE_NAIVE, MAINTENANCE_OPTIMIZED,
                               MAINTENANCE_NONE):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        check_positive("io_scale", io_scale)
        self._stat = get_statistic(statistic)
        self.B = B
        self._mode = maintenance
        self._rng = ensure_rng(seed)
        self._ledger = ledger
        self._io_scale = io_scale
        self._sample: List[Any] = []
        self._resamples: List[Resample] = []
        self.counters = MaintenanceCounters()
        if maintenance == MAINTENANCE_NAIVE:
            self._maintainer: Optional[_BaseMaintainer] = NaiveMaintainer(
                self._stat, rng=self._rng, ledger=ledger, io_scale=io_scale)
        elif maintenance == MAINTENANCE_OPTIMIZED:
            self._maintainer = SketchMaintainer(
                self._stat, rng=self._rng, ledger=ledger, c=sketch_c,
                io_scale=io_scale)
        else:
            self._maintainer = None

    # ------------------------------------------------------------ lifecycle
    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Re-bind the cost ledger (a reduce task charges maintenance I/O
        to its own ledger, which changes between iterations)."""
        self._ledger = ledger
        if self._maintainer is not None:
            self._maintainer._ledger = ledger
            sketches = getattr(self._maintainer, "_delta_sketches", None)
            if sketches:
                for sketch in sketches:
                    sketch.set_ledger(ledger)

    def set_io_scale(self, io_scale: float) -> None:
        """Re-bind the logical scale of stored items (stand-in files)."""
        check_positive("io_scale", io_scale)
        self._io_scale = io_scale
        if self._maintainer is not None:
            self._maintainer.io_scale = io_scale
            sketches = getattr(self._maintainer, "_delta_sketches", None)
            if sketches:
                for sketch in sketches:
                    sketch.io_scale = io_scale

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    @property
    def sample(self) -> List[Any]:
        return list(self._sample)

    def initialize(self, sample: Sequence[Any]) -> None:
        """First iteration: the initial sample is the first delta (§4.1:
        "we can treat the initial sample as a delta sample added to an
        empty set")."""
        if self._sample:
            raise RuntimeError("ResampleSet already initialized")
        if len(sample) == 0:
            raise ValueError("initial sample cannot be empty")
        items = list(sample)
        self._sample.extend(items)
        if self._maintainer is not None:
            self._maintainer.on_delta(items)
        n = len(items)
        for _ in range(self.B):
            resample = Resample(self._stat.make_state())
            resample.new_segment()
            idx = self._rng.integers(0, n, size=n)
            for i in idx:
                resample.add(items[int(i)], 0)
            self.counters.state_ops += n
            self._resamples.append(resample)
        if self._maintainer is not None:
            self._maintainer.end_iteration()
            self.counters.merge(self._maintainer.counters)
            self._maintainer.counters = MaintenanceCounters()

    def expand(self, delta: Sequence[Any]) -> None:
        """Grow the sample by ``delta`` and update every resample."""
        if not self._sample:
            raise RuntimeError("initialize() must be called first")
        delta_items = list(delta)
        if len(delta_items) == 0:
            return
        n_old = len(self._sample)
        n_new = n_old + len(delta_items)
        self._sample.extend(delta_items)

        if self._maintainer is None:
            # Baseline: throw everything away and bootstrap s' afresh.
            self._resamples = []
            items = self._sample
            for _ in range(self.B):
                resample = Resample(self._stat.make_state())
                resample.new_segment()
                idx = self._rng.integers(0, n_new, size=n_new)
                for i in idx:
                    resample.add(items[int(i)], 0)
                self.counters.state_ops += n_new
                self.counters.full_rebuilds += 1
                self._resamples.append(resample)
            if self._ledger is not None:
                # Re-reading the whole stored sample for every rebuild.
                self._ledger.charge_seeks(self.B)
                self._ledger.charge_disk_read(
                    self.B * n_new * ITEM_BYTES * self._io_scale)
            return

        self._maintainer.on_delta(delta_items)
        for resample in self._resamples:
            self._maintainer.update(resample, n_old, n_new, len(delta_items))
        self._maintainer.end_iteration()
        self.counters.merge(self._maintainer.counters)
        self._maintainer.counters = MaintenanceCounters()

    # ------------------------------------------------------------- results
    def estimates(self, executor: Optional[Executor] = None) -> np.ndarray:
        """Per-resample statistic values (the result distribution).

        ``executor`` optionally fans the ``B`` evaluations out over a
        parallel backend — but only when evaluation is actually work:
        registered statistics keep O(1)-readable states (running mean,
        sorted multiset, …) for which pool dispatch (and, on process
        pools, pickling each resample) can only lose, so those stay on
        the plain loop.  :class:`~repro.core.estimators.FunctionalState`
        — the arbitrary-user-function fallback, whose ``result()``
        re-evaluates the whole resample — is the case that fans out.
        Either way the result is identical on every backend (evaluation
        is a pure read; order is preserved by
        :meth:`~repro.exec.Executor.map`); the *maintenance* of the
        resamples stays sequential regardless — §4.1's delta updates
        share one RNG stream by design.
        """
        if not self._resamples:
            raise RuntimeError("no resamples yet; call initialize()")
        if executor is not None and executor.is_parallel \
                and isinstance(self._resamples[0].state, FunctionalState):
            return np.array(executor.map(_resample_estimate, self._resamples))
        return np.array([r.estimate() for r in self._resamples])

    def resample_sizes(self) -> List[int]:
        return [r.size for r in self._resamples]


def _resample_estimate(resample: Resample) -> float:
    """Module-level accessor so process pools can pickle it by reference."""
    return resample.estimate()
