"""Monte-Carlo bootstrap (paper §3).

The bootstrap estimates the sampling distribution of *any* statistic by
re-computing it on ``B`` resamples drawn **with replacement** from the
sample.  An exact bootstrap would enumerate all ``C(2n-1, n-1)``
resamples — already 77×10⁶ for n = 15 (§3) — so the Monte-Carlo
approximation with a modest ``B`` is used instead; the paper's empirical
finding is that ≈30 bootstraps stabilize the error estimate (Fig. 2a),
far below the theoretical ``B = ε₀⁻²/2`` prescription (§3, Fig. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.estimators import Statistic, StatisticLike, get_statistic
from repro.exec.executor import (
    Executor,
    as_executor,
    broadcast_value,
    chunk_sizes,
)
from repro.util.rng import SeedLike, ensure_rng, spawn_child
from repro.util.stats import coefficient_of_variation
from repro.util.validation import check_positive, check_positive_int

#: Resamples per work unit when a bootstrap fans out over an executor.
#: Fixed (never derived from the worker count) so the decomposition —
#: and therefore every RNG stream — is identical on any backend and any
#: pool size.
DEFAULT_CHUNK_B = 32


def exact_bootstrap_count(n: int) -> int:
    """Number of distinct resamples of an ``n``-item sample: C(2n-1, n-1).

    Quantifies why exact bootstrapping is infeasible (§3).
    """
    check_positive_int("n", n)
    return math.comb(2 * n - 1, n - 1)


def theoretical_num_bootstraps(epsilon0: float) -> int:
    """Theory's resample count for Monte-Carlo error ``ε₀``: ``ε₀⁻²/2``.

    ``ε₀`` is the acceptable deviation of the Monte-Carlo estimate from
    the exact bootstrap estimator (§3, citing Efron).  Fig. 8 contrasts
    this (often wildly off) prescription with SSABE's empirical choice.
    """
    check_positive("epsilon0", epsilon0)
    return math.ceil(0.5 / (epsilon0 * epsilon0))


@dataclass
class BootstrapResult:
    """Result distribution and derived accuracy measures.

    Attributes
    ----------
    estimates:
        The ``B`` per-resample statistic values (the *result
        distribution* of Fig. 1).
    point_estimate:
        The statistic computed on the full sample ``s``.
    """

    estimates: np.ndarray
    point_estimate: float
    n: int
    B: int

    @property
    def mean(self) -> float:
        """Bootstrap mean θ̂* (average of per-resample estimates)."""
        return float(np.mean(self.estimates))

    @property
    def std(self) -> float:
        """Monte-Carlo bootstrap standard error σ̂_B (§3)."""
        if len(self.estimates) < 2:
            return 0.0
        return float(np.std(self.estimates, ddof=1))

    @property
    def variance(self) -> float:
        if len(self.estimates) < 2:
            return 0.0
        return float(np.var(self.estimates, ddof=1))

    @property
    def cv(self) -> float:
        """Coefficient of variation of the result distribution — the
        paper's error measure (§3)."""
        return coefficient_of_variation(self.mean, self.std)

    @property
    def bias(self) -> float:
        """Bootstrap bias estimate: θ̂* − θ̂."""
        return self.mean - self.point_estimate

    def confidence_interval(self, confidence: float = 0.95
                            ) -> tuple[float, float]:
        """Percentile bootstrap confidence interval."""
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        alpha = (1.0 - confidence) / 2.0
        lo, hi = np.quantile(self.estimates, [alpha, 1.0 - alpha])
        return float(lo), float(hi)


def _bootstrap_chunk(task: Tuple[Any, Statistic, int,
                                 np.random.Generator]) -> np.ndarray:
    """Draw and evaluate one chunk of resamples.

    Module-level so a :class:`~repro.exec.ProcessExecutor` can pickle it
    by reference.  The chunk's generator was pre-spawned by the caller,
    so the result depends only on the task, never on which worker (or
    how many workers) ran it.  The sample arrives as a
    :class:`~repro.exec.BroadcastHandle` (shipped to each worker once
    per pool) or as a raw array — :func:`~repro.exec.broadcast_value`
    accepts both.
    """
    shared, stat, chunk_b, rng = task
    data = broadcast_value(shared)
    indices = rng.integers(0, data.size, size=(chunk_b, data.size))
    return np.asarray(stat.batch(data[indices]), dtype=float)


def bootstrap(sample: Sequence[float], statistic: StatisticLike = "mean", *,
              B: int = 30, seed: SeedLike = None,
              executor: Union[None, str, Executor] = None,
              chunk_b: int = DEFAULT_CHUNK_B) -> BootstrapResult:
    """Monte-Carlo bootstrap of ``statistic`` over ``sample``.

    Without an ``executor`` (the default), resampling is vectorized in
    one shot: a ``B × n`` index matrix is drawn from ``seed``'s stream
    and the statistic's batch form evaluates all rows — bit-for-bit the
    library's historical behavior.

    With an ``executor`` (a backend name or an :class:`~repro.exec.Executor`
    instance), the ``B`` resamples are decomposed into fixed-size chunks
    of ``chunk_b`` and each chunk gets its own pre-spawned child RNG
    stream, so the result distribution is byte-identical across
    ``"serial"``, ``"threads"`` and ``"processes"`` and across worker
    counts — but it is a *different* (equally valid) draw than the
    executor-less path, which consumes ``seed``'s stream directly.  For
    process pools the statistic must be picklable (every registered
    statistic is; ad-hoc lambdas are not).

    The sample itself travels through the executor's broadcast-once
    data plane: serial/thread backends pass a zero-copy reference and a
    process pool receives it once per worker at pool start-up, so chunk
    tasks never re-pickle the data (see
    :meth:`~repro.exec.Executor.broadcast`).
    """
    check_positive_int("B", B)
    stat = get_statistic(statistic)
    data = np.asarray(sample, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("sample must be a non-empty 1-D sequence")
    rng = ensure_rng(seed)
    n = data.size
    if executor is None:
        indices = rng.integers(0, n, size=(B, n))
        estimates = np.asarray(stat.batch(data[indices]), dtype=float)
        return BootstrapResult(estimates=estimates,
                               point_estimate=stat(data), n=n, B=B)

    check_positive_int("chunk_b", chunk_b)
    sizes = chunk_sizes(B, chunk_b)
    rngs = spawn_child(rng, len(sizes))
    ex, owned = as_executor(executor)
    shared = None
    try:
        # Broadcast-once data plane: the sample is shared with the pool
        # a single time instead of being pickled into every chunk task.
        shared = ex.broadcast(data)
        tasks = [(shared, stat, size, chunk_rng)
                 for size, chunk_rng in zip(sizes, rngs)]
        parts = ex.map(_bootstrap_chunk, tasks)
    finally:
        # Released promptly so repeated bootstraps over one long-lived
        # executor never accumulate old samples in its registry.
        if shared is not None:
            ex.release(shared)
        if owned:
            ex.close()
    estimates = np.concatenate(parts)
    return BootstrapResult(estimates=estimates,
                           point_estimate=stat(data), n=n, B=B)


def bootstrap_file(fs, path: str, statistic: StatisticLike = "mean", *,
                   B: int = 30, seed: SeedLike = None,
                   executor: Union[None, str, Executor] = None,
                   chunk_b: int = DEFAULT_CHUNK_B,
                   ledger=None,
                   split_logical_bytes: Optional[int] = None,
                   cached: bool = True) -> BootstrapResult:
    """Monte-Carlo bootstrap of ``statistic`` over a simulated-HDFS file.

    The columnar ingest entry point: the file's numeric column is
    materialized through the filesystem's split cache
    (:func:`repro.hdfs.read_numeric_column`), so an iterative driver
    that bootstraps the same file repeatedly — the M3R regime of
    caching deserialized inputs across the jobs of one session — pays
    the newline scan and float parse once and replays the cached column
    afterwards.  The *simulated* cost charged to ``ledger`` remains a
    full scan per call either way, and ``cached=False`` pins the
    scalar ingest reference.

    Resampling semantics are exactly :func:`bootstrap`'s, including the
    broadcast-once executor data plane for the sample itself.
    """
    from repro.hdfs.split_cache import read_numeric_column

    sample = read_numeric_column(fs, path, ledger=ledger,
                                 split_logical_bytes=split_logical_bytes,
                                 cached=cached)
    return bootstrap(sample, statistic, B=B, seed=seed,
                     executor=executor, chunk_b=chunk_b)


def bootstrap_cv_curve(sample: Sequence[float],
                       statistic: StatisticLike = "mean", *,
                       B_values: Optional[Sequence[int]] = None,
                       B_max: int = 60,
                       seed: SeedLike = None) -> List[tuple[int, float]]:
    """cv of the result distribution as a function of ``B`` (Fig. 2a).

    Draws ``max(B_values)`` resamples once and reports the cv over each
    prefix, so the curve reflects a single growing Monte-Carlo run — the
    same way EARL's SSABE phase scans candidate ``B`` values (§3.2).
    Prefix moments come from running cumulative sums, so the whole curve
    costs one pass over the estimates instead of re-reducing every
    prefix (O(B) rather than O(B²) in the number of resamples).
    """
    stat = get_statistic(statistic)
    data = np.asarray(sample, dtype=float)
    if data.size == 0:
        raise ValueError("sample must be non-empty")
    if B_values is None:
        B_values = range(2, B_max + 1)
    B_values = sorted(set(int(b) for b in B_values))
    if B_values[0] < 2:
        raise ValueError("cv needs at least 2 resamples")
    rng = ensure_rng(seed)
    n = data.size
    top = B_values[-1]
    indices = rng.integers(0, n, size=(top, n))
    estimates = np.asarray(stat.batch(data[indices]), dtype=float)
    # One pass: cumulative first/second moments of the shifted estimates
    # give every prefix's mean and (ddof=1) std.  Shifting by the grand
    # mean keeps the sum-of-squares subtraction from cancelling.
    shift = float(estimates.mean())
    centred = estimates - shift
    counts = np.asarray(B_values)
    cum = np.cumsum(centred)[counts - 1]
    cumsq = np.cumsum(centred * centred)[counts - 1]
    means = cum / counts
    variances = np.maximum(cumsq - counts * means * means, 0.0) / (counts - 1)
    stds = np.sqrt(variances)
    return [(int(b), coefficient_of_variation(shift + m, s))
            for b, m, s in zip(counts, means, stds)]


def bootstrap_cv_vs_n(population: Sequence[float],
                      sample_sizes: Sequence[int],
                      statistic: StatisticLike = "mean", *,
                      B: int = 30, seed: SeedLike = None
                      ) -> List[tuple[int, float]]:
    """cv as a function of the sample size ``n`` (Fig. 2b).

    Draws nested samples (each size reuses the previous draw plus an
    extension) so the curve isolates the effect of ``n``.
    """
    check_positive_int("B", B)
    data = np.asarray(population, dtype=float)
    rng = ensure_rng(seed)
    sizes = sorted(set(int(s) for s in sample_sizes))
    if sizes[0] < 2:
        raise ValueError("sample sizes must be >= 2")
    if sizes[-1] > data.size:
        raise ValueError("sample size exceeds population size")
    # One shuffled order; prefixes are nested uniform samples.
    order = rng.permutation(data.size)
    curve: List[tuple[int, float]] = []
    for size in sizes:
        sample = data[order[:size]]
        res = bootstrap(sample, statistic, B=B, seed=rng)
        curve.append((size, res.cv))
    return curve
