"""Configuration of the EARL driver loop."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.accuracy import ERROR_METRICS
from repro.core.delta import (
    MAINTENANCE_NAIVE,
    MAINTENANCE_NONE,
    MAINTENANCE_OPTIMIZED,
)
from repro.exec.executor import EXECUTOR_SERIAL, available_executors
from repro.mapreduce.faults import FaultPolicy
from repro.util.rng import SeedLike
from repro.util.validation import check_fraction, check_positive, check_positive_int

#: Sampler selection for the MapReduce-backed driver.
SAMPLER_PREMAP = "premap"
SAMPLER_POSTMAP = "postmap"


@dataclass
class EarlConfig:
    """Knobs of the early-approximation loop (defaults follow the paper).

    Attributes
    ----------
    sigma:
        User-desired error bound σ; the loop stops when the estimated
        error is ≤ σ.  The paper's experiments use 0.05 ("results are
        accurate to within 5% of the true answer", §6).
    tau:
        Error-stability threshold τ = |cv_i − cv_{i-1}| used when
        estimating B, which also bounds the candidate set {2, …, 1/τ}
        (§3.2).
    B_min:
        Floor on the estimated number of bootstraps.  The paper's
        single-step stability test can fire after a lucky small step; a
        floor (plus the window below) keeps the error estimate reliable.
    stability_window:
        Number of consecutive |cv_i − cv_{i-1}| < τ steps required to
        declare the cv curve stable in SSABE phase 1.
    pilot_fraction:
        Pilot sample share ``p`` of N for SSABE; "in practice we found
        that p = 0.01 gives robust results" (§3.2).
    min_pilot_size:
        Floor on the pilot so tiny inputs still produce usable pilots.
    subsample_levels:
        Number ``l`` of nested pilot subsamples in SSABE phase 2; "we
        found it to be sufficient to set l = 5" (§3.2).
    expansion_factor:
        Sample growth factor when the error is still above σ (the naive
        doubling of §3.2; SSABE usually makes one iteration suffice).
    max_iterations:
        Safety bound on expansion rounds.
    error_metric:
        Name of the AES error measure (default cv, §3).
    maintenance:
        Resample maintenance mode: ``"optimized"`` (§4.1 sketches),
        ``"naive"`` (direct HDFS access), or ``"none"`` (full rebuild —
        the stock-bootstrap baseline).
    sketch_c:
        Sketch size constant ``c`` (sketch keeps c·√n items, §4.1).
    estimation:
        Error-estimation strategy: ``"bootstrap"`` (the paper's default)
        or ``"jackknife"`` (the §8 future-work alternative — cheaper for
        smooth statistics, refused for non-smooth ones).
    sampler:
        ``"premap"`` or ``"postmap"`` (§3.3) for the MapReduce driver.
    confidence:
        Confidence level of reported bootstrap intervals.
    seed:
        Master seed for the whole run (reproducibility).
    executor:
        Execution backend for the run's fan-out points (task waves,
        resample evaluation, sweeps): ``"serial"`` (default; in-order,
        bit-for-bit the reference), ``"threads"``
        (``ThreadPoolExecutor``; wins when the work releases the GIL),
        or ``"processes"`` (``ProcessPoolExecutor``; true CPU
        parallelism, work must be picklable).  All three produce
        byte-identical results for a fixed ``seed`` — see
        :mod:`repro.exec`.  The ``REPRO_EXECUTOR`` environment variable
        overrides this field at run time.
    max_workers:
        Pool size for the parallel backends (default: the machine's CPU
        count; ignored by ``"serial"``).  ``REPRO_MAX_WORKERS``
        overrides it.
    """

    sigma: float = 0.05
    tau: float = 0.01
    B_min: int = 15
    stability_window: int = 3
    pilot_fraction: float = 0.01
    min_pilot_size: int = 64
    subsample_levels: int = 5
    expansion_factor: float = 2.0
    max_iterations: int = 15
    error_metric: str = "cv"
    maintenance: str = MAINTENANCE_OPTIMIZED
    sketch_c: float = 4.0
    estimation: str = "bootstrap"
    sampler: str = SAMPLER_PREMAP
    confidence: float = 0.95
    seed: SeedLike = None
    B_override: Optional[int] = None
    n_override: Optional[int] = None
    executor: str = EXECUTOR_SERIAL
    max_workers: Optional[int] = None
    #: Recovery behaviour for the MapReduce jobs an EARL driver runs
    #: (retries/blacklisting/speculation/salvage — see
    #: :class:`repro.mapreduce.faults.FaultPolicy`).  ``None`` keeps the
    #: engine byte-identical to the fault-oblivious path.
    fault_policy: Optional[FaultPolicy] = None

    def __post_init__(self) -> None:
        check_fraction("sigma", self.sigma, inclusive_high=True)
        check_fraction("tau", self.tau, inclusive_high=True)
        check_fraction("pilot_fraction", self.pilot_fraction,
                       inclusive_high=True)
        check_positive_int("B_min", self.B_min)
        if self.B_min < 2:
            raise ValueError("B_min must be at least 2")
        check_positive_int("stability_window", self.stability_window)
        check_positive_int("min_pilot_size", self.min_pilot_size)
        check_positive_int("subsample_levels", self.subsample_levels)
        check_positive("expansion_factor", self.expansion_factor)
        if self.expansion_factor <= 1.0:
            raise ValueError("expansion_factor must exceed 1.0")
        check_positive_int("max_iterations", self.max_iterations)
        if self.error_metric not in ERROR_METRICS:
            raise ValueError(f"unknown error metric {self.error_metric!r}")
        if self.maintenance not in (MAINTENANCE_OPTIMIZED, MAINTENANCE_NAIVE,
                                    MAINTENANCE_NONE):
            raise ValueError(f"unknown maintenance mode {self.maintenance!r}")
        check_positive("sketch_c", self.sketch_c)
        if self.estimation not in ("bootstrap", "jackknife"):
            raise ValueError(
                f"unknown estimation strategy {self.estimation!r}")
        if self.sampler not in (SAMPLER_PREMAP, SAMPLER_POSTMAP):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        check_fraction("confidence", self.confidence, inclusive_high=False)
        if self.B_override is not None:
            check_positive_int("B_override", self.B_override)
        if self.n_override is not None:
            check_positive_int("n_override", self.n_override)
        if self.executor not in available_executors():
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"known: {available_executors()}")
        if self.max_workers is not None:
            check_positive_int("max_workers", self.max_workers)
