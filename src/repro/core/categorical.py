"""Categorical-data support (paper Appendix A).

For categorical data the statistic of interest is the proportion of
"successes".  Given a uniform sample of size ``n`` with ``X`` successes,
``p̂ = X/n`` follows (approximately) a normal with mean ``p`` and
variance ``p(1-p)/n``, so z-based confidence intervals and significance
tests apply — "this approach allows EARL to be applied even to
categorical data".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from scipy import stats as sp_stats

from repro.util.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class CategoricalEstimate:
    """Proportion estimate with its normal-approximation accuracy."""

    proportion: float
    variance: float
    std: float
    cv: float
    ci_low: float
    ci_high: float
    n: int
    confidence: float

    def meets(self, sigma: float) -> bool:
        """Same termination semantics as the numeric AES: cv ≤ σ."""
        return self.cv <= sigma


def proportion_estimate(successes: int, n: int, *,
                        confidence: float = 0.95) -> CategoricalEstimate:
    """Estimate a population proportion from sample counts.

    Variance is the binomial ``p(1-p)/n`` of Appendix A; the interval is
    the Wald z-interval, clipped to [0, 1].
    """
    check_positive_int("n", n)
    if not 0 <= successes <= n:
        raise ValueError(f"successes must be in [0, {n}], got {successes}")
    check_fraction("confidence", confidence, inclusive_high=False)
    p_hat = successes / n
    variance = p_hat * (1.0 - p_hat) / n
    std = math.sqrt(variance)
    z = float(sp_stats.norm.ppf(0.5 + confidence / 2.0))
    lo = max(0.0, p_hat - z * std)
    hi = min(1.0, p_hat + z * std)
    cv = math.inf if p_hat == 0 and std > 0 else (
        0.0 if std == 0 else std / p_hat)
    return CategoricalEstimate(proportion=p_hat, variance=variance, std=std,
                               cv=cv, ci_low=lo, ci_high=hi, n=n,
                               confidence=confidence)


def z_test_proportion(successes: int, n: int, p0: float
                      ) -> Tuple[float, float]:
    """Two-sided z-test of ``H0: p = p0``; returns ``(z, p_value)``.

    Valid for large samples, where the binomial is approximately normal
    (Appendix A).
    """
    check_positive_int("n", n)
    check_fraction("p0", p0, inclusive_high=False)
    if not 0 <= successes <= n:
        raise ValueError(f"successes must be in [0, {n}], got {successes}")
    p_hat = successes / n
    se = math.sqrt(p0 * (1.0 - p0) / n)
    z = (p_hat - p0) / se
    p_value = 2.0 * float(sp_stats.norm.sf(abs(z)))
    return z, p_value


def required_sample_size_proportion(p_expected: float, sigma: float) -> int:
    """Smallest ``n`` with ``cv(p̂) ≤ σ``: ``n ≥ (1-p) / (p·σ²)``.

    The categorical analogue of SSABE's phase 2 — closed-form because
    the binomial variance is known.
    """
    check_fraction("p_expected", p_expected, inclusive_high=False)
    check_fraction("sigma", sigma, inclusive_high=True)
    return math.ceil((1.0 - p_expected) / (p_expected * sigma * sigma))
