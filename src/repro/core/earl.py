"""The EARL drivers: in-memory sessions and MapReduce-backed jobs.

Two entry points implement the paper's loop (Fig. 1: sampling stage →
user's task → accuracy estimation stage → expand or terminate):

* :class:`EarlSession` — pure in-memory pipeline over a numeric array.
  This is the algorithmic heart (SSABE pilot, delta-maintained bootstrap,
  expansion loop) without the cluster substrate; benchmarks for Figs. 2,
  3 and 8 use it directly.
* :class:`EarlJob` — the full system: a simulated Hadoop cluster, pre- or
  post-map sampling, persistent (warm-started) mappers, a
  :class:`BootstrapReducer` running the accuracy-estimation stage inside
  the reduce phase ("resampling is actually implemented within a reduce
  phase, to minimize any overhead due to job restarts", §5), and the
  reducer→mapper feedback channel carrying the current error.

:func:`run_stock_job` is the stock-Hadoop baseline the paper compares
against, and :class:`StatisticReducer` adapts any registered statistic to
the engine's incremental-reduce API.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.accuracy import AccuracyEstimate, AccuracyEstimationStage
from repro.core.checkpoint import checkpoint_doc, loss_event, replay_stream
from repro.core.config import (
    SAMPLER_POSTMAP,
    SAMPLER_PREMAP,
    EarlConfig,
)
from repro.core.correction import CorrectionLike, get_correction
from repro.core.estimators import Statistic, StatisticLike, get_statistic
from repro.core.jackknife_stage import JackknifeEstimationStage
from repro.core.result import EarlResult, IterationRecord, ProgressSnapshot
from repro.core.ssabe import SSABEResult, estimate_parameters
from repro.exec.executor import Executor, as_executor, resolve_executor
from repro.mapreduce.combiner import is_estimator_state
from repro.mapreduce.job import ON_UNAVAILABLE_SKIP, JobConf, JobResult
from repro.mapreduce.mapper import Mapper, ProjectionMapper
from repro.mapreduce.pipeline import FeedbackChannel
from repro.mapreduce.reducer import IncrementalReducer, Reducer
from repro.mapreduce.runtime import JobClient
from repro.mapreduce.types import KeyValue, TaskContext
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.sampling.postmap import PostMapSampler
from repro.sampling.premap import PreMapSampler
from repro.util.rng import ensure_rng, spawn_child
from repro.util.validation import check_positive_int

#: Monotonic id source for per-run feedback-channel namespaces.
_earl_run_ids = itertools.count()


def make_estimation_stage(statistic: "Statistic", B: int, cfg: EarlConfig,
                          *, seed=None, executor: Optional[Executor] = None):
    """Build the configured error-estimation stage (bootstrap default,
    jackknife as the §8 future-work alternative).  ``executor``
    parallelizes the bootstrap stage's resample evaluation; results are
    identical with or without it."""
    if cfg.estimation == "jackknife":
        return JackknifeEstimationStage(statistic,
                                        confidence=cfg.confidence)
    return AccuracyEstimationStage(
        statistic, B, metric=cfg.error_metric,
        maintenance=cfg.maintenance, sketch_c=cfg.sketch_c, seed=seed,
        executor=executor)


def check_row_compatibility(statistic: Statistic, data: np.ndarray) -> None:
    """Reject 2-D data for scalar-item statistics up front.

    Only statistics declaring ``row_items`` (e.g. ``"correlation"``)
    can ingest vector rows; letting a scalar state meet a row would
    fail deep inside delta maintenance with an opaque ``TypeError``.
    """
    if data.ndim == 2 and not getattr(statistic, "row_items", False):
        raise ValueError(
            f"statistic {statistic.name!r} consumes scalar items; 2-D "
            "row data requires a row-wise statistic such as "
            "'correlation'")


def pilot_size_for(cfg: EarlConfig, N: int) -> int:
    """§3.2 pilot sizing, shared by every driver: at least
    ``min_pilot_size``, the pilot fraction of ``N``, and enough items
    for the nested subsample halvings — capped at ``N``."""
    return min(N, max(cfg.min_pilot_size,
                      math.ceil(cfg.pilot_fraction * N),
                      2 ** cfg.subsample_levels))


def exact_fallback_result(statistic: Statistic, data, *, sigma: float,
                          ssabe: Optional[SSABEResult]) -> EarlResult:
    """§3.1 fallback: ``B x n >= N``, so the exact computation over all
    ``N`` in-memory items wins — shared by the in-memory drivers."""
    value = statistic(np.asarray(data))
    N = len(data)
    return EarlResult(
        estimate=value, uncorrected_estimate=value, error=0.0,
        achieved=True, sigma=sigma, statistic=statistic.name, n=N, B=1,
        population_size=N, sample_fraction=1.0, used_fallback=True,
        simulated_seconds=0.0, iterations=[], ssabe=ssabe, accuracy=None)

# ---------------------------------------------------------------------------
# In-memory driver
# ---------------------------------------------------------------------------


class EarlSession:
    """Early-approximation loop over an in-memory dataset.

    Example
    -------
    >>> import numpy as np
    >>> from repro import EarlSession, EarlConfig
    >>> data = np.random.default_rng(0).lognormal(0, 1, 200_000)
    >>> result = EarlSession(data, "mean",
    ...                      config=EarlConfig(sigma=0.05, seed=1)).run()
    >>> result.achieved
    True
    """

    def __init__(self, data: Sequence[float],
                 statistic: StatisticLike = "mean", *,
                 config: Optional[EarlConfig] = None,
                 correction: CorrectionLike = "auto") -> None:
        self._data = np.asarray(data, dtype=float)
        # 1-D: plain numeric items.  2-D: each ROW is one item (e.g.
        # (x, y) pairs for the "correlation" statistic); resampling and
        # delta maintenance treat rows atomically.
        if self._data.ndim not in (1, 2) or len(self._data) == 0:
            raise ValueError("data must be a non-empty 1-D sequence "
                             "or a 2-D array of row items")
        self._stat = get_statistic(statistic)
        check_row_compatibility(self._stat, self._data)
        self._config = config or EarlConfig()
        self._correction = get_correction(correction, self._stat.name)
        #: §3.4 loss events queued by :meth:`report_loss`, applied by an
        #: active stream at its next iteration boundary.
        self._pending_loss: List[Tuple[float, Any]] = []
        # Checkpoint provenance: snapshots yielded so far and the loss
        # events already applied, each pinned to its round boundary.
        self._stream_emitted = 0
        self._applied_losses: List[Dict[str, Any]] = []
        self.degraded = False
        self.lost_fraction = 0.0

    @property
    def config(self) -> EarlConfig:
        return self._config

    def report_loss(self, fraction: float, *, seed: Any = None) -> None:
        """Report that a uniform random ``fraction`` of the population
        was lost to failures (§3.4: lost splits / dead nodes).

        An active :meth:`stream` applies the loss at its next iteration
        boundary: lost rows are dropped from both the unseen pool and
        the already-consumed sample, the bootstrap stage is re-estimated
        from the survivors (widening the confidence interval), and the
        expansion loop keeps running over the surviving data.  Results
        and snapshots carry ``degraded=True`` and the cumulative
        ``lost_fraction``.  ``seed`` pins which rows die (default: a
        deterministic child stream of the session's generator).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("loss fraction must be in (0, 1)")
        self._pending_loss.append((float(fraction), seed))
        if _METRICS.enabled:
            _METRICS.counter("repro_loss_reports_total",
                             labels={"engine": "earl_session"},
                             help="§3.4 sample-loss reports").inc()

    def run(self) -> EarlResult:
        """Execute the full loop: SSABE pilot, sampling, bootstrap error
        estimation, expansion until ``cv <= sigma`` (or the §3.1 exact
        fallback when ``B x n >= N``).

        This is a thin wrapper that drains :meth:`stream`; for a fixed
        seed the returned result is identical either way.
        """
        final: Optional[ProgressSnapshot] = None
        for final in self.stream():
            pass
        assert final is not None and final.result is not None
        return final.result

    def stream(self) -> Iterator[ProgressSnapshot]:
        """Progressive engine: yield a :class:`ProgressSnapshot` after
        every accuracy-estimation stage.

        The last snapshot has ``final=True`` and carries the complete
        :class:`EarlResult` — draining the stream is exactly
        :meth:`run`.  Closing the generator early (``break`` out of the
        loop, or call ``close()``) cancels the run: the bootstrap
        executor is torn down and no further iteration is computed, so
        only the completed iterations were ever charged.
        """
        for snap in self._stream_core():
            self._stream_emitted += 1
            yield snap

    def checkpoint(self) -> Dict[str, Any]:
        """Round-boundary checkpoint: how many snapshots this session
        has yielded and which losses were applied at which boundary.

        Valid between snapshots (i.e. while the consumer holds the
        generator at a yield).  Together with the construction arguments
        (data, statistic, config incl. seed) it is everything
        :meth:`restore` needs; no bootstrap state is serialized —
        recovery is deterministic replay.
        """
        return checkpoint_doc(self._stream_emitted, self._applied_losses)

    def restore(self, checkpoint: Mapping[str, Any]
                ) -> Iterator[ProgressSnapshot]:
        """Resume from a :meth:`checkpoint` taken on an identically-
        constructed session: yields exactly the snapshots an
        uninterrupted run would still produce, byte-identical.  Must be
        called on a fresh session (never streamed); raises
        :class:`~repro.core.checkpoint.CheckpointReplayError` when the
        replay cannot reach the checkpointed round."""
        if self._stream_emitted:
            raise RuntimeError(
                "restore() needs a fresh session; this one already "
                f"yielded {self._stream_emitted} snapshots")
        return replay_stream(self, checkpoint)

    def _stream_core(self) -> Iterator[ProgressSnapshot]:
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        data = self._data
        N = len(data)
        order = rng.permutation(N)  # prefixes = uniform samples w/o repl.

        # ---------------------------------------------------- SSABE pilot
        pilot = data[order[:pilot_size_for(cfg, N)]]
        ssabe: Optional[SSABEResult] = None
        if cfg.B_override is not None and cfg.n_override is not None:
            B, n = cfg.B_override, cfg.n_override
            fallback = B * n >= N
        else:
            ssabe = estimate_parameters(
                pilot, N, self._stat, sigma=cfg.sigma, tau=cfg.tau,
                levels=cfg.subsample_levels, B_min=cfg.B_min,
                stability_window=cfg.stability_window,
                maintenance=cfg.maintenance, seed=rng)
            B = cfg.B_override or ssabe.B
            n = cfg.n_override or ssabe.n
            fallback = B * n >= N

        if fallback:
            result = exact_fallback_result(self._stat, self._data,
                                           sigma=cfg.sigma, ssabe=ssabe)
            yield _exact_snapshot(result)
            return

        # ------------------------------------------------- expansion loop
        executor = resolve_executor(cfg)
        original_N = N
        loss_rng: Optional[np.random.Generator] = None
        self.degraded = False
        self.lost_fraction = 0.0
        try:
            aes = make_estimation_stage(self._stat, B, cfg, seed=rng,
                                        executor=executor)
            iterations: List[IterationRecord] = []
            consumed = 0
            target = min(max(n, 2), N)
            estimate: Optional[AccuracyEstimate] = None
            for iteration in range(1, cfg.max_iterations + 1):
                if self._pending_loss:
                    # §3.4 recovery: drop the lost rows, re-estimate the
                    # bootstrap from the surviving sample, continue.
                    if loss_rng is None:
                        loss_rng = spawn_child(rng, 1)[0]
                    order, consumed, aes, estimate = self._apply_losses(
                        order, consumed, B, executor, loss_rng)
                    N = len(order)
                    self.lost_fraction = 1.0 - N / original_N
                    self.degraded = True
                    target = min(max(target, consumed), N)
                if target > consumed:
                    delta = data[order[consumed:target]]
                    with _TRACER.span("earl_session.round",
                                      attrs={"iteration": iteration,
                                             "rows": target - consumed}):
                        consumed = target
                        estimate = aes.offer(delta)
                    if _METRICS.enabled:
                        _METRICS.counter(
                            "repro_engine_rounds_total",
                            labels={"engine": "earl_session"},
                            help="engine expansion rounds").inc()
                        _METRICS.counter(
                            "repro_engine_rows_total",
                            labels={"engine": "earl_session"},
                            help="sample rows consumed by rounds"
                            ).inc(len(delta))
                assert estimate is not None
                expand = (not estimate.meets(cfg.sigma)
                          and consumed < N
                          and iteration < cfg.max_iterations)
                iterations.append(IterationRecord(
                    iteration=iteration, sample_size=consumed,
                    accuracy=estimate, simulated_seconds=0.0,
                    expanded=expand))
                if not expand:
                    break
                yield self._snapshot(iteration, estimate, consumed, N)
                target = min(N, math.ceil(consumed * cfg.expansion_factor))
        finally:
            executor.close()

        assert estimate is not None
        p = consumed / N
        corrected = self._correction(estimate.estimate, p)
        result = EarlResult(
            estimate=corrected,
            uncorrected_estimate=estimate.estimate,
            error=estimate.error,
            achieved=estimate.meets(cfg.sigma),
            sigma=cfg.sigma,
            statistic=self._stat.name,
            n=consumed,
            B=B,
            population_size=N,
            sample_fraction=p,
            used_fallback=False,
            simulated_seconds=0.0,
            iterations=iterations,
            ssabe=ssabe,
            accuracy=estimate,
            degraded=self.degraded,
            lost_fraction=self.lost_fraction,
        )
        yield _final_snapshot(result, len(iterations), 0.0)

    def _apply_losses(self, order: np.ndarray, consumed: int, B: int,
                      executor: Executor,
                      loss_rng: np.random.Generator):
        """Apply queued :meth:`report_loss` events: mask the lost rows
        out of the permutation (population and consumed prefix alike)
        and rebuild the estimation stage from the surviving sample.

        At least one row always survives — a total loss has no data left
        to estimate on, so the engine degrades to the smallest
        population it can still bound."""
        data = self._data
        cfg = self._config
        keep = np.ones(len(order), dtype=bool)
        for fraction, seed in self._pending_loss:
            self._applied_losses.append(
                loss_event(self._stream_emitted, fraction, seed))
            event_rng = ensure_rng(seed) if seed is not None else loss_rng
            keep &= event_rng.random(len(order)) >= fraction
        self._pending_loss.clear()
        if not keep.any():
            keep[0] = True
        new_consumed = int(np.count_nonzero(keep[:consumed]))
        order = order[keep]
        aes = make_estimation_stage(self._stat, B, cfg, seed=loss_rng,
                                    executor=executor)
        estimate = None
        if new_consumed:
            estimate = aes.offer(data[order[:new_consumed]])
        return order, new_consumed, aes, estimate

    def _snapshot(self, iteration: int, accuracy: AccuracyEstimate,
                  consumed: int, N: int) -> ProgressSnapshot:
        """Intermediate snapshot after one estimation stage."""
        p = consumed / N
        return ProgressSnapshot(
            iteration=iteration,
            estimate=self._correction(accuracy.estimate, p),
            uncorrected_estimate=accuracy.estimate,
            error=accuracy.error,
            cv=accuracy.cv,
            ci_low=accuracy.ci_low,
            ci_high=accuracy.ci_high,
            sample_size=consumed,
            population_size=N,
            sample_fraction=p,
            achieved=accuracy.meets(self._config.sigma),
            final=False,
            statistic=self._stat.name,
            cost_delta_seconds=0.0,
            cost_total_seconds=0.0,
            accuracy=accuracy,
            result=None,
            degraded=self.degraded,
            lost_fraction=self.lost_fraction)

def _final_snapshot(result: EarlResult, iteration: int,
                    delta_seconds: float) -> ProgressSnapshot:
    """The stream's last snapshot, restating a just-built result (no
    re-aggregation of reducer state)."""
    accuracy = result.accuracy
    assert accuracy is not None
    return ProgressSnapshot(
        iteration=iteration,
        estimate=result.estimate,
        uncorrected_estimate=result.uncorrected_estimate,
        error=result.error,
        cv=accuracy.cv,
        ci_low=accuracy.ci_low,
        ci_high=accuracy.ci_high,
        sample_size=result.n,
        population_size=result.population_size,
        sample_fraction=result.sample_fraction,
        achieved=result.achieved,
        final=True,
        statistic=result.statistic,
        cost_delta_seconds=delta_seconds,
        cost_total_seconds=result.simulated_seconds,
        accuracy=accuracy,
        result=result,
        degraded=result.degraded,
        lost_fraction=result.lost_fraction)


def _exact_snapshot(result: EarlResult) -> ProgressSnapshot:
    """The single final snapshot of a §3.1 exact-fallback stream."""
    return ProgressSnapshot(
        iteration=0, estimate=result.estimate,
        uncorrected_estimate=result.uncorrected_estimate,
        error=0.0, cv=0.0,
        ci_low=result.estimate, ci_high=result.estimate,
        sample_size=result.n, population_size=result.population_size,
        sample_fraction=result.sample_fraction,
        achieved=True, final=True, statistic=result.statistic,
        cost_delta_seconds=result.simulated_seconds,
        cost_total_seconds=result.simulated_seconds,
        accuracy=None, result=result)


# ---------------------------------------------------------------------------
# MapReduce building blocks
# ---------------------------------------------------------------------------


class StatisticReducer(IncrementalReducer):
    """Adapter: any registered statistic as an incremental reducer."""

    #: Per-call state only — safe to run reduce tasks concurrently.
    parallel_safe = True

    def __init__(self, statistic: StatisticLike, *,
                 correction: CorrectionLike = "auto") -> None:
        self._stat = get_statistic(statistic)
        self._correction = get_correction(correction, self._stat.name)

    def initialize(self, values: Sequence[Any]) -> Any:
        state = self._stat.make_state()
        for v in values:
            # A map-side GroupStateCombiner pre-aggregates each key's
            # values into states; fold those in by merging.
            if is_estimator_state(v):
                if not hasattr(state, "merge"):
                    raise TypeError(
                        f"state of {self._stat.name!r} does not support "
                        "merging")
                state.merge(v)
            else:
                state.add(v)
        return state

    def update(self, state: Any, new_input: Any) -> Any:
        if is_estimator_state(new_input):
            if hasattr(state, "merge"):
                state.merge(new_input)
                return state
            raise TypeError(
                f"state of {self._stat.name!r} does not support merging")
        state.add(new_input)
        return state

    def finalize(self, state: Any) -> float:
        return float(state.result())

    def correct(self, result: float, p: float) -> float:
        return self._correction(result, p)


class BootstrapReducer(Reducer):
    """EARL's reduce phase: delta-maintained bootstrap per key.

    Keeps one :class:`AccuracyEstimationStage` per intermediate key; each
    ``reduce`` call feeds the key's *new* values (the delta sample routed
    to it this iteration), refreshes the bootstrap estimate and emits
    ``(key, AccuracyEstimate)``.  On task cleanup the average error over
    the keys seen is published to the feedback channel together with the
    iteration timestamp, which is what the (persistent) mappers poll to
    decide on expansion versus termination (§3.3).
    """

    def __init__(self, statistic: StatisticLike, B: int, *,
                 metric: str = "cv",
                 maintenance: str = "optimized",
                 sketch_c: float = 4.0,
                 estimation: str = "bootstrap",
                 confidence: float = 0.95,
                 seed=None,
                 channel: Optional[FeedbackChannel] = None,
                 executor: Optional[Executor] = None) -> None:
        check_positive_int("B", B)
        self._stat = get_statistic(statistic)
        self._B = B
        self._metric = metric
        self._maintenance = maintenance
        self._sketch_c = sketch_c
        self._estimation = estimation
        self._confidence = confidence
        self._rng = ensure_rng(seed)
        self._channel = channel
        self._executor = executor  # borrowed; the driver owns it
        self._stages: Dict[Hashable, object] = {}
        self._task_errors: List[float] = []

    # -- engine API ---------------------------------------------------------
    def setup(self, ctx: TaskContext) -> None:
        self._task_errors = []

    def reduce(self, key: Hashable, values: Sequence[Any],
               ctx: TaskContext) -> Iterable[KeyValue]:
        stage = self._stages.get(key)
        if stage is None:
            if self._estimation == "jackknife":
                stage = JackknifeEstimationStage(
                    self._stat, confidence=self._confidence)
            else:
                stage = AccuracyEstimationStage(
                    self._stat, self._B, metric=self._metric,
                    maintenance=self._maintenance, sketch_c=self._sketch_c,
                    seed=self._rng, executor=self._executor)
            self._stages[key] = stage
        stage.set_ledger(ctx.ledger)
        if ctx.record_scale != 1.0:
            stage.set_io_scale(ctx.record_scale)
        ops_before = stage.work_ops
        estimate = stage.offer([float(v) for v in values])
        ops_delta = stage.work_ops - ops_before
        # Resampling work is real CPU the reduce phase pays for.  Each
        # sampled record stands for ``record_scale`` records of the real
        # sample (fraction-based sizing), so the work scales with it —
        # this is what keeps EARL's cost growing with the data size in
        # Fig. 5 and bounds the speed-up near the paper's ~4x.
        ctx.ledger.charge_cpu_records(ops_delta * ctx.record_scale,
                                      ctx.cpu_factor)
        self._task_errors.append(estimate.error)
        yield key, estimate

    def cleanup(self, ctx: TaskContext) -> Iterable[KeyValue]:
        if self._channel is not None and self._task_errors:
            reducer_id = 0
            if ctx.task_id and "-" in ctx.task_id:
                reducer_id = int(ctx.task_id.rsplit("-", 1)[1])
            timestamp = float(ctx.config.get("iteration", 0))
            mean_error = sum(self._task_errors) / len(self._task_errors)
            if math.isfinite(mean_error):
                self._channel.publish_error(reducer_id, timestamp, mean_error)
        return ()

    # -- driver-side accessors ----------------------------------------------
    def key_estimates(self) -> Dict[Hashable, AccuracyEstimate]:
        """Latest accuracy estimate per key."""
        return {key: stage.history[-1]
                for key, stage in self._stages.items() if stage.history}

    def sample_sizes(self) -> Dict[Hashable, int]:
        return {key: stage.sample_size for key, stage in self._stages.items()}


# ---------------------------------------------------------------------------
# MapReduce-backed driver
# ---------------------------------------------------------------------------


def estimate_record_count(cluster: Cluster, path: str, *,
                          probe_bytes: int = 8192) -> Tuple[int, float]:
    """Estimate a file's record count from a small probe.

    Returns ``(estimated_records, probe_simulated_seconds)``.  Counting
    exactly would require the full scan EARL is trying to avoid.  The
    probe targets the first *available* block, so node failures that
    lost the file's head do not kill the estimate (§3.4).
    """
    from repro.hdfs.errors import BlockUnavailableError

    fs = cluster.hdfs
    meta = fs.namenode.get(path)
    if meta.size == 0:
        return 0, 0.0
    ledger = cluster.new_ledger()
    probe = b""
    for block in meta.blocks:
        if not fs.block_available(block):
            continue
        end = min(block.offset + probe_bytes, block.end)
        try:
            probe = fs.read_range(path, block.offset, end, ledger=ledger,
                                  sequential=False)
        except BlockUnavailableError:  # pragma: no cover - raced failure
            continue
        break
    if not probe:
        raise BlockUnavailableError(
            f"no readable block left in {path}; cannot estimate its size")
    lines = probe.count(b"\n")
    if lines == 0:
        return 1, ledger.total_seconds
    avg_len = len(probe) / lines
    return max(1, int(round(meta.size / avg_len))), ledger.total_seconds


@dataclass
class _EarlJobState:
    """Bookkeeping carried across the driver loop's iterations."""

    simulated_seconds: float = 0.0
    input_fraction: float = 1.0


class EarlJob:
    """MapReduce-backed EARL run on a simulated cluster.

    Parameters
    ----------
    cluster:
        The simulated cluster holding the input file in its HDFS.
    input_path:
        Newline-delimited input file.
    statistic:
        Statistic of interest ``f`` (name, :class:`Statistic`, or
        callable).
    mapper:
        Map function; defaults to :class:`ProjectionMapper`, which parses
        ``key<TAB>value`` lines (or bare numbers under a constant key).
    config:
        The :class:`EarlConfig` driving σ, τ, sampler choice, maintenance
        mode, expansion policy, and seeding.
    correction:
        ``correct()`` policy; ``"auto"`` scales extensive statistics by
        ``1/p``.
    on_unavailable:
        ``"skip"`` (default) reproduces §3.4: lost splits reduce the
        available input instead of failing the job.
    pipelined:
        ``True`` (default) models EARL's Hadoop modifications: mappers
        stay alive across sample expansions, so only the first iteration
        pays job set-up and task start-up.  ``False`` restarts an MR job
        per iteration — the naive pre-EARL workflow the paper's Fig. 6
        baseline ("original resampling algorithm") corresponds to.
    """

    def __init__(self, cluster: Cluster, input_path: str, *,
                 statistic: StatisticLike = "mean",
                 mapper: Optional[Mapper] = None,
                 config: Optional[EarlConfig] = None,
                 correction: CorrectionLike = "auto",
                 n_reducers: int = 1,
                 cpu_factor: float = 1.0,
                 split_logical_bytes: Optional[int] = None,
                 on_unavailable: str = ON_UNAVAILABLE_SKIP,
                 pipelined: bool = True) -> None:
        self._cluster = cluster
        self._path = input_path
        self._stat = get_statistic(statistic)
        self._mapper = mapper or ProjectionMapper()
        self._config = config or EarlConfig()
        self._correction = get_correction(correction, self._stat.name)
        self._n_reducers = n_reducers
        self._cpu_factor = cpu_factor
        self._split_logical_bytes = split_logical_bytes
        self._on_unavailable = on_unavailable
        self._pipelined = pipelined
        self.last_reducer: Optional[BootstrapReducer] = None
        self.last_channel: Optional[FeedbackChannel] = None
        self.last_sampler = None

    # ------------------------------------------------------------------ run
    def run(self) -> EarlResult:
        """Execute the MapReduce-backed loop on the simulated cluster:
        local-mode SSABE pilot, sampled (pre/post-map) iterations with
        persistent mappers and the reducer->mapper feedback channel,
        until the published average error meets sigma.

        This drains :meth:`stream`; for a fixed ``config.seed`` the
        result is identical either way.  The run's fan-out points go
        through the backend selected by ``config.executor`` (or the
        ``REPRO_EXECUTOR`` override); results and simulated times are
        byte-identical across backends.
        """
        final: Optional[ProgressSnapshot] = None
        for final in self.stream():
            pass
        assert final is not None and final.result is not None
        return final.result

    def stream(self) -> Iterator[ProgressSnapshot]:
        """Progressive engine: yield a :class:`ProgressSnapshot` after
        every cluster iteration's accuracy-estimation stage.

        The last snapshot has ``final=True`` and carries the run's
        :class:`EarlResult`.  Closing the generator early cancels the
        run *cleanly*: the stop flag is raised on the reducer→mapper
        :class:`~repro.mapreduce.pipeline.FeedbackChannel` (the §3.3
        protocol the persistent mappers poll for termination), the
        execution backend is shut down, and the cost ledger holds only
        the iterations that actually completed — no further cluster
        task runs after the consumer stops.
        """
        executor = resolve_executor(self._config)
        try:
            yield from self._stream(executor)
        finally:
            executor.close()

    def _stream(self, executor: Executor) -> Iterator[ProgressSnapshot]:
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        pilot_rng, job_rng, reducer_rng = spawn_child(rng, 3)
        client = JobClient(self._cluster, executor=executor)
        state = _EarlJobState()

        N, probe_seconds = estimate_record_count(self._cluster, self._path)
        state.simulated_seconds += probe_seconds
        if N == 0:
            raise ValueError(f"input {self._path} is empty")

        # ---------------------------------------------------- SSABE pilot
        pilot_values, pilot_seconds = self._run_pilot(client, N, pilot_rng)
        state.simulated_seconds += pilot_seconds
        ssabe: Optional[SSABEResult] = None
        if cfg.B_override is not None and cfg.n_override is not None:
            B, n = cfg.B_override, cfg.n_override
        else:
            ssabe = estimate_parameters(
                pilot_values, N, self._stat, sigma=cfg.sigma, tau=cfg.tau,
                levels=cfg.subsample_levels, B_min=cfg.B_min,
                stability_window=cfg.stability_window,
                maintenance=cfg.maintenance, seed=pilot_rng)
            B = cfg.B_override or ssabe.B
            n = cfg.n_override or ssabe.n

        if B * n >= N:
            result = self._run_exact(client, job_rng, state, N, ssabe)
            yield _exact_snapshot(result)
            return

        # ------------------------------------------------- expansion loop
        sampler = self._make_sampler()
        # Each run gets its own channel namespace: stale error files from
        # an earlier job on the same cluster must not drive termination.
        channel = FeedbackChannel(self._cluster.hdfs,
                                  f"earl-run-{next(_earl_run_ids)}")
        reducer = BootstrapReducer(
            self._stat, B, metric=cfg.error_metric,
            maintenance=cfg.maintenance, sketch_c=cfg.sketch_c,
            estimation=cfg.estimation, confidence=cfg.confidence,
            seed=reducer_rng, channel=channel, executor=executor)
        self.last_reducer = reducer
        self.last_channel = channel
        self.last_sampler = sampler
        conf = JobConf(
            name=f"earl-{self._stat.name}", input_path=self._path,
            mapper=self._mapper, reducer=reducer,
            n_reducers=self._n_reducers, cpu_factor=self._cpu_factor,
            split_logical_bytes=self._split_logical_bytes,
            on_unavailable=self._on_unavailable,
            params={"iteration": 0}, seed=job_rng,
            fault_policy=cfg.fault_policy)

        iterations: List[IterationRecord] = []
        target = min(max(n, 2), N)
        last_result: Optional[JobResult] = None
        avg_error: Optional[float] = None
        try:
            for iteration in range(1, cfg.max_iterations + 1):
                sampler.set_total_target(target)
                conf.params["iteration"] = iteration
                with _TRACER.span("earl_job.iteration",
                                  attrs={"iteration": iteration,
                                         "target": target}):
                    last_result = client.run(
                        conf, record_source=sampler,
                        splits=sampler.splits,
                        warm_start=self._pipelined and iteration > 1)
                if _METRICS.enabled:
                    _METRICS.counter("repro_engine_rounds_total",
                                     labels={"engine": "earl_job"},
                                     help="engine expansion rounds").inc()
                state.simulated_seconds += last_result.simulated_seconds
                state.input_fraction = min(state.input_fraction,
                                           last_result.input_fraction)
                avg_error = channel.average_error()
                sampled = sampler.sampled_count
                accuracy = self._combined_accuracy(reducer)
                met = avg_error is not None and avg_error <= cfg.sigma
                exhausted = sampled >= N or sampler_exhausted(sampler, target)
                expand = not met and not exhausted \
                    and iteration < cfg.max_iterations
                iterations.append(IterationRecord(
                    iteration=iteration, sample_size=sampled,
                    accuracy=accuracy,
                    simulated_seconds=last_result.simulated_seconds,
                    expanded=expand))
                if not expand:
                    break
                yield self._snapshot(reducer, state, N, iteration,
                                     last_result.simulated_seconds)
                target = min(N,
                             math.ceil(max(sampled, 1)
                                       * cfg.expansion_factor))
        finally:
            # Reached on normal termination AND on consumer-driven
            # cancellation (GeneratorExit): the persistent mappers poll
            # this flag and terminate, so no task keeps running after
            # the consumer walks away (§3.3's termination protocol).
            channel.signal_stop()

        assert last_result is not None
        result = self._finalize(reducer, iterations, state, N, B, ssabe)
        yield _final_snapshot(result, len(iterations),
                              last_result.simulated_seconds)

    # ------------------------------------------------------------- helpers
    def _make_sampler(self):
        if self._config.sampler == SAMPLER_PREMAP:
            return PreMapSampler(self._cluster.hdfs, self._path,
                                 split_logical_bytes=self._split_logical_bytes)
        if self._config.sampler == SAMPLER_POSTMAP:
            return PostMapSampler(self._cluster.hdfs, self._path,
                                  split_logical_bytes=self._split_logical_bytes)
        raise ValueError(f"unknown sampler {self._config.sampler!r}")

    def _run_pilot(self, client: JobClient, N: int, rng
                   ) -> Tuple[np.ndarray, float]:
        """Draw the SSABE pilot and map it to values, all in local mode.

        "The initial n is picked to be small, therefore the sample size
        and the number of bootstraps estimation can be performed on a
        single machine prior to MR job start-up" (§3.2).
        """
        cfg = self._config
        sampler = self._make_sampler()
        sampler.set_total_target(pilot_size_for(cfg, N))
        from repro.mapreduce.reducer import IdentityReducer
        conf = JobConf(
            name="earl-pilot", input_path=self._path, mapper=self._mapper,
            reducer=IdentityReducer(), n_reducers=1, local_mode=True,
            cpu_factor=self._cpu_factor,
            split_logical_bytes=self._split_logical_bytes,
            on_unavailable=self._on_unavailable, seed=rng,
            fault_policy=self._config.fault_policy)
        result = client.run(conf, record_source=sampler,
                            splits=sampler.splits)
        values = np.array([float(v) for _, v in result.output])
        if values.size == 0:
            raise ValueError("pilot sample is empty; cannot run SSABE")
        return values, result.simulated_seconds

    def _run_exact(self, client: JobClient, rng, state: _EarlJobState,
                   N: int, ssabe: Optional[SSABEResult]) -> EarlResult:
        """§3.1 fallback: run the user's job over the full input."""
        reducer = StatisticReducer(self._stat, correction=self._correction)
        conf = JobConf(
            name=f"stock-{self._stat.name}", input_path=self._path,
            mapper=self._mapper, reducer=reducer,
            n_reducers=self._n_reducers, cpu_factor=self._cpu_factor,
            split_logical_bytes=self._split_logical_bytes,
            on_unavailable=self._on_unavailable, seed=rng,
            fault_policy=self._config.fault_policy)
        result = client.run(conf)
        state.simulated_seconds += result.simulated_seconds
        grouped = result.grouped()
        values = {key: vals[0] for key, vals in grouped.items()}
        estimate = (next(iter(values.values())) if len(values) == 1
                    else float(np.mean(list(values.values()))))
        return EarlResult(
            estimate=estimate, uncorrected_estimate=estimate, error=0.0,
            achieved=True, sigma=self._config.sigma,
            statistic=self._stat.name, n=N, B=1, population_size=N,
            sample_fraction=1.0, used_fallback=True,
            simulated_seconds=state.simulated_seconds, iterations=[],
            ssabe=ssabe, accuracy=None,
            input_fraction=result.input_fraction)

    def _combined_accuracy(self, reducer: BootstrapReducer
                           ) -> Optional[AccuracyEstimate]:
        estimates = reducer.key_estimates()
        if not estimates:
            return None
        if len(estimates) == 1:
            return next(iter(estimates.values()))
        # Multi-key job: report the worst key (conservative).
        return max(estimates.values(), key=lambda e: e.error)

    def _summarize(self, reducer: BootstrapReducer, state: _EarlJobState,
                   N: int) -> Optional[Tuple[float, AccuracyEstimate,
                                             Dict[Any, float], float, int]]:
        """Corrected summary of the reducer's current per-key estimates:
        ``(estimate, accuracy, corrected_by_key, p, sampled)``, or
        ``None`` before any estimate exists."""
        key_estimates = reducer.key_estimates()
        if not key_estimates:
            return None
        sampled = sum(reducer.sample_sizes().values())
        # Under node failures only a fraction of the input was reachable;
        # the effective population shrinks accordingly (§3.4).
        effective_N = max(1, int(round(N * state.input_fraction)))
        p = min(1.0, max(sampled / effective_N, 1e-12))
        corrected = {key: self._correction(est.estimate, p)
                     for key, est in key_estimates.items()}
        accuracy = self._combined_accuracy(reducer)
        assert accuracy is not None
        estimate = (next(iter(corrected.values())) if len(corrected) == 1
                    else float(np.mean(list(corrected.values()))))
        return estimate, accuracy, corrected, p, sampled

    def _snapshot(self, reducer: BootstrapReducer, state: _EarlJobState,
                  N: int, iteration: int,
                  delta_seconds: float) -> ProgressSnapshot:
        """Intermediate snapshot of the driver loop after one iteration
        (the final one is restated from the result, see
        :func:`_final_snapshot`)."""
        summary = self._summarize(reducer, state, N)
        if summary is None:  # no estimate yet (e.g. empty iteration)
            nan = float("nan")
            return ProgressSnapshot(
                iteration=iteration, estimate=nan,
                uncorrected_estimate=nan, error=math.inf, cv=math.inf,
                ci_low=nan, ci_high=nan, sample_size=0,
                population_size=N, sample_fraction=0.0, achieved=False,
                final=False, statistic=self._stat.name,
                cost_delta_seconds=delta_seconds,
                cost_total_seconds=state.simulated_seconds,
                accuracy=None, result=None)
        estimate, accuracy, _, p, sampled = summary
        return ProgressSnapshot(
            iteration=iteration,
            estimate=estimate,
            uncorrected_estimate=accuracy.estimate,
            error=accuracy.error,
            cv=accuracy.cv,
            ci_low=accuracy.ci_low,
            ci_high=accuracy.ci_high,
            sample_size=sampled,
            population_size=N,
            sample_fraction=p,
            achieved=accuracy.meets(self._config.sigma),
            final=False,
            statistic=self._stat.name,
            cost_delta_seconds=delta_seconds,
            cost_total_seconds=state.simulated_seconds,
            accuracy=accuracy,
            result=None)

    def _finalize(self, reducer: BootstrapReducer,
                  iterations: List[IterationRecord], state: _EarlJobState,
                  N: int, B: int, ssabe: Optional[SSABEResult]) -> EarlResult:
        cfg = self._config
        summary = self._summarize(reducer, state, N)
        if summary is None:
            raise RuntimeError("EARL produced no estimates; empty sample?")
        estimate, accuracy, corrected, p, sampled = summary
        result = EarlResult(
            estimate=estimate,
            uncorrected_estimate=accuracy.estimate,
            error=accuracy.error,
            achieved=accuracy.meets(cfg.sigma),
            sigma=cfg.sigma,
            statistic=self._stat.name,
            n=sampled,
            B=B,
            population_size=N,
            sample_fraction=p,
            used_fallback=False,
            simulated_seconds=state.simulated_seconds,
            iterations=iterations,
            ssabe=ssabe,
            accuracy=accuracy,
            input_fraction=state.input_fraction,
            key_estimates=corrected,
        )
        return result


def sampler_exhausted(sampler, target: int) -> bool:
    """Whether the sampler failed to reach its target (data exhausted)."""
    return sampler.sampled_count < target


def run_stock_job(cluster: Cluster, input_path: str,
                  statistic: StatisticLike = "mean", *,
                  mapper: Optional[Mapper] = None,
                  correction: CorrectionLike = "auto",
                  n_reducers: int = 1,
                  cpu_factor: float = 1.0,
                  split_logical_bytes: Optional[int] = None,
                  seed=None,
                  executor=None) -> Tuple[float, JobResult]:
    """Stock-Hadoop baseline: full scan, exact answer, no approximation.

    Returns ``(value, JobResult)`` — the benchmarks compare
    ``JobResult.simulated_seconds`` against the EARL run's total.

    ``executor`` (``None``, a backend name, or an
    :class:`~repro.exec.Executor`) fans the map/reduce task waves out
    over a parallel backend; the default mapper and reducer are both
    ``parallel_safe``, so this is the engine's genuinely parallel path.
    Results are identical on every backend.
    """
    stat = get_statistic(statistic)
    conf = JobConf(
        name=f"stock-{stat.name}", input_path=input_path,
        mapper=mapper or ProjectionMapper(),
        reducer=StatisticReducer(stat, correction=correction),
        n_reducers=n_reducers, cpu_factor=cpu_factor,
        split_logical_bytes=split_logical_bytes, seed=seed)
    ex, owned = as_executor(executor)
    try:
        result = JobClient(cluster, executor=ex).run(conf)
    finally:
        if owned:
            ex.close()
    grouped = result.grouped()
    if len(grouped) == 1:
        value = next(iter(grouped.values()))[0]
    else:
        value = float(np.mean([vals[0] for vals in grouped.values()]))
    return float(value), result


def run_grouped_stock_job(cluster: Cluster, input_path: str,
                          statistic: StatisticLike = "mean", *,
                          mapper: Optional[Mapper] = None,
                          correction: CorrectionLike = "auto",
                          combine: bool = True,
                          n_reducers: int = 1,
                          cpu_factor: float = 1.0,
                          split_logical_bytes: Optional[int] = None,
                          seed=None,
                          executor=None
                          ) -> Tuple[Dict[Hashable, float], JobResult]:
    """Exact grouped aggregation: full scan, one value per group key.

    The stock-Hadoop reference a grouped approximate query
    (:class:`repro.query.Query`) is measured against.  The default
    mapper parses ``key<TAB>value`` lines; ``combine=True`` (the
    grouped pre-aggregation path) folds each key's map output into one
    mergeable estimator state per spill via
    :class:`~repro.mapreduce.GroupStateCombiner`, so the shuffle
    carries states instead of records — output is numerically
    equivalent with the combiner on or off (identical up to float
    summation order; the tests pin this), only the shuffled volume
    differs.  Returns ``({key: value}, JobResult)``.
    """
    from repro.mapreduce.combiner import GroupStateCombiner

    stat = get_statistic(statistic)
    conf = JobConf(
        name=f"grouped-{stat.name}", input_path=input_path,
        mapper=mapper or ProjectionMapper(),
        reducer=StatisticReducer(stat, correction=correction),
        combiner=GroupStateCombiner(stat) if combine else None,
        n_reducers=n_reducers, cpu_factor=cpu_factor,
        split_logical_bytes=split_logical_bytes, seed=seed)
    ex, owned = as_executor(executor)
    try:
        result = JobClient(cluster, executor=ex).run(conf)
    finally:
        if owned:
            ex.close()
    values = {key: float(vals[0]) for key, vals in result.grouped().items()}
    return values, result
