"""Block bootstrap for inter-dependent data (paper Appendix A).

The plain bootstrap assumes i.i.d. items.  For b-dependent data (e.g.
time series) "blocks of consecutive observations are selected [so] that
dependencies are preserved amongst data-items".  This module implements
the moving-block bootstrap (with a circular variant) plus a simple
automatic block-length rule in the spirit of Politis & White [25].
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.bootstrap import BootstrapResult
from repro.core.estimators import StatisticLike, get_statistic
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


def auto_block_length(data: Sequence[float], *, max_lag: Optional[int] = None
                      ) -> int:
    """Heuristic block length: first lag where autocorrelation dies off.

    Scans the sample autocorrelation for the first lag below the
    2/√n significance band (then adds one for safety); falls back to the
    classic ``n^(1/3)`` rate when the series never decorrelates within
    ``max_lag``.  A lightweight stand-in for the Politis-White automatic
    selector the paper cites.
    """
    series = np.asarray(data, dtype=float)
    n = series.size
    if n < 4:
        return 1
    if max_lag is None:
        max_lag = min(n // 4, 100)
    centered = series - series.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 1
    threshold = 2.0 / math.sqrt(n)
    for lag in range(1, max_lag + 1):
        acf = float(np.dot(centered[:-lag], centered[lag:])) / denom
        if abs(acf) < threshold:
            return lag + 1
    return max(1, int(round(n ** (1.0 / 3.0))))


def block_bootstrap(data: Sequence[float],
                    statistic: StatisticLike = "mean", *,
                    B: int = 30,
                    block_length: Optional[int] = None,
                    circular: bool = True,
                    seed: SeedLike = None) -> BootstrapResult:
    """Moving-block bootstrap of ``statistic`` over a dependent series.

    Resamples are built by concatenating ``⌈n/b⌉`` randomly chosen
    length-``b`` blocks (consecutive runs of the series) and trimming to
    ``n``.  ``circular=True`` wraps blocks around the end so every
    observation has equal inclusion probability.
    """
    check_positive_int("B", B)
    series = np.asarray(data, dtype=float)
    n = series.size
    if n == 0:
        raise ValueError("series cannot be empty")
    stat = get_statistic(statistic)
    if block_length is None:
        block_length = auto_block_length(series)
    check_positive_int("block_length", block_length)
    b = min(block_length, n)
    rng = ensure_rng(seed)

    blocks_per_resample = math.ceil(n / b)
    if circular:
        starts = rng.integers(0, n, size=(B, blocks_per_resample))
        extended = np.concatenate([series, series[:b - 1]]) if b > 1 else series
    else:
        starts = rng.integers(0, n - b + 1, size=(B, blocks_per_resample))
        extended = series
    # Expand starts into full index matrices: start + offset for each
    # position in a block, rows concatenated then trimmed to n.
    offsets = np.arange(b)
    idx = (starts[:, :, None] + offsets[None, None, :]).reshape(B, -1)[:, :n]
    resamples = extended[idx]
    estimates = np.asarray(stat.batch(resamples), dtype=float)
    return BootstrapResult(estimates=estimates, point_estimate=stat(series),
                           n=n, B=B)


def lag1_autocorrelation(data: Sequence[float]) -> float:
    """Sample lag-1 autocorrelation (dependence diagnostic for tests)."""
    series = np.asarray(data, dtype=float)
    if series.size < 2:
        raise ValueError("need at least two observations")
    centered = series - series.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    return float(np.dot(centered[:-1], centered[1:])) / denom
