"""Accuracy Estimation Stage (AES, paper §3.1).

Consumes the result distribution produced by bootstrap resampling and
derives the error measure EARL iterates on.  The default measure is the
coefficient of variation (cv = std/mean, §3); the stage is "independent
of the error measure", so alternative metrics (relative CI half-width,
variance, bias) are pluggable.

:class:`AccuracyEstimationStage` is the stateful form used by the EARL
driver: it owns a delta-maintained :class:`~repro.core.delta.ResampleSet`
and reports an :class:`AccuracyEstimate` after every sample expansion —
the quantity reducers publish to mappers through the feedback channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.core.delta import MAINTENANCE_OPTIMIZED, ResampleSet
from repro.core.estimators import StatisticLike, get_statistic
from repro.exec.executor import Executor
from repro.util.rng import SeedLike
from repro.util.stats import coefficient_of_variation, relative_half_width


@dataclass(frozen=True)
class AccuracyEstimate:
    """Point estimate plus accuracy measures from one bootstrap round."""

    estimate: float           # bootstrap mean θ̂* (result to report)
    point_estimate: float     # f(s): the statistic on the raw sample
    error: float              # value of the selected error metric
    cv: float
    std: float
    variance: float
    bias: float
    ci_low: float
    ci_high: float
    n: int
    B: int

    def meets(self, sigma: float) -> bool:
        """Termination test: is the error within the user's bound σ?"""
        return self.error <= sigma


ErrorMetric = Callable[[np.ndarray, float], float]


def _cv_metric(estimates: np.ndarray, point: float) -> float:
    mean = float(np.mean(estimates))
    std = float(np.std(estimates, ddof=1)) if estimates.size > 1 else 0.0
    return coefficient_of_variation(mean, std)


def _relative_ci_metric(estimates: np.ndarray, point: float) -> float:
    mean = float(np.mean(estimates))
    std = float(np.std(estimates, ddof=1)) if estimates.size > 1 else 0.0
    return relative_half_width(mean, std)


def _variance_metric(estimates: np.ndarray, point: float) -> float:
    return float(np.var(estimates, ddof=1)) if estimates.size > 1 else 0.0


def _bias_metric(estimates: np.ndarray, point: float) -> float:
    return abs(float(np.mean(estimates)) - point)


ERROR_METRICS: Dict[str, ErrorMetric] = {
    "cv": _cv_metric,
    "relative_ci": _relative_ci_metric,
    "variance": _variance_metric,
    "bias": _bias_metric,
}


def get_error_metric(name: str) -> ErrorMetric:
    """Look up an error metric by name (see ``ERROR_METRICS``)."""
    try:
        return ERROR_METRICS[name]
    except KeyError:
        raise KeyError(f"unknown error metric {name!r}; "
                       f"known: {sorted(ERROR_METRICS)}") from None


def summarize_distribution(estimates: np.ndarray, point_estimate: float,
                           n: int, *, metric: str = "cv",
                           confidence: float = 0.95) -> AccuracyEstimate:
    """Turn a result distribution into an :class:`AccuracyEstimate`."""
    estimates = np.asarray(estimates, dtype=float)
    if estimates.size == 0:
        raise ValueError("empty result distribution")
    mean = float(np.mean(estimates))
    std = float(np.std(estimates, ddof=1)) if estimates.size > 1 else 0.0
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(estimates, [alpha, 1.0 - alpha])
    return AccuracyEstimate(
        estimate=mean,
        point_estimate=point_estimate,
        error=get_error_metric(metric)(estimates, point_estimate),
        cv=coefficient_of_variation(mean, std),
        std=std,
        variance=std * std,
        bias=mean - point_estimate,
        ci_low=float(lo),
        ci_high=float(hi),
        n=n,
        B=int(estimates.size),
    )


class AccuracyEstimationStage:
    """Stateful AES over a growing sample (Fig. 1's right-hand stage).

    ``executor`` optionally parallelizes the per-resample estimate
    evaluation after every expansion (see
    :meth:`~repro.core.delta.ResampleSet.estimates`); results are
    identical with or without it.  The stage borrows the executor — the
    caller owns its lifecycle.
    """

    def __init__(self, statistic: StatisticLike, B: int, *,
                 metric: str = "cv",
                 maintenance: str = MAINTENANCE_OPTIMIZED,
                 sketch_c: float = 4.0,
                 seed: SeedLike = None,
                 ledger: Optional[CostLedger] = None,
                 executor: Optional[Executor] = None) -> None:
        self._stat = get_statistic(statistic)
        self._metric = metric
        get_error_metric(metric)  # validate eagerly
        self._executor = executor
        self._resamples = ResampleSet(self._stat, B,
                                      maintenance=maintenance,
                                      sketch_c=sketch_c, seed=seed,
                                      ledger=ledger)
        self._history: list[AccuracyEstimate] = []

    @property
    def resample_set(self) -> ResampleSet:
        return self._resamples

    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        """Re-bind the cost ledger of the underlying resample set."""
        self._resamples.set_ledger(ledger)

    def set_io_scale(self, io_scale: float) -> None:
        """Re-bind the stand-in item scale of the resample set."""
        self._resamples.set_io_scale(io_scale)

    @property
    def work_ops(self) -> int:
        """State operations performed so far (drivers charge CPU by the
        delta of this counter)."""
        return self._resamples.counters.state_ops

    @property
    def history(self) -> list[AccuracyEstimate]:
        """Estimates from every iteration so far (oldest first)."""
        return list(self._history)

    @property
    def sample_size(self) -> int:
        return self._resamples.sample_size

    def offer(self, delta: Sequence[float]) -> AccuracyEstimate:
        """Feed a (delta) sample and return the refreshed estimate."""
        if self._resamples.sample_size == 0:
            self._resamples.initialize(delta)
        else:
            self._resamples.expand(delta)
        estimate = self._current_estimate()
        self._history.append(estimate)
        return estimate

    def error_stability(self) -> Optional[float]:
        """|cvᵢ − cvᵢ₋₁| between the last two iterations (the paper's τ
        measure of error stability, §3.1); ``None`` before 2 iterations."""
        if len(self._history) < 2:
            return None
        return abs(self._history[-1].cv - self._history[-2].cv)

    def _current_estimate(self) -> AccuracyEstimate:
        estimates = self._resamples.estimates(executor=self._executor)
        sample = np.asarray(self._resamples.sample, dtype=float)
        point = self._stat(sample)
        return summarize_distribution(estimates, point,
                                      self._resamples.sample_size,
                                      metric=self._metric)
