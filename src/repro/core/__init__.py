"""EARL core: the paper's contribution.

Bootstrap-based accuracy estimation (§3), SSABE parameter estimation
(§3.2), delta-maintained resampling (§4.1), intra-iteration sharing
(§4.2), categorical and dependent-data extensions (Appendix A), and the
driver loops tying them to the sampling layer and the MapReduce engine.
"""

from repro.core.accuracy import (
    ERROR_METRICS,
    AccuracyEstimate,
    AccuracyEstimationStage,
    get_error_metric,
    summarize_distribution,
)
from repro.core.bootstrap import (
    BootstrapResult,
    bootstrap,
    bootstrap_cv_curve,
    bootstrap_cv_vs_n,
    bootstrap_file,
    exact_bootstrap_count,
    theoretical_num_bootstraps,
)
from repro.core.categorical_session import CategoricalEarlSession
from repro.core.categorical import (
    CategoricalEstimate,
    proportion_estimate,
    required_sample_size_proportion,
    z_test_proportion,
)
from repro.core.config import SAMPLER_POSTMAP, SAMPLER_PREMAP, EarlConfig
from repro.core.correction import (
    CORRECTIONS,
    get_correction,
    inverse_fraction,
    no_correction,
)
from repro.core.delta import (
    MAINTENANCE_NAIVE,
    MAINTENANCE_NONE,
    MAINTENANCE_OPTIMIZED,
    MaintenanceCounters,
    NaiveMaintainer,
    Resample,
    ResampleSet,
    SketchMaintainer,
)
from repro.core.dependent import (
    auto_block_length,
    block_bootstrap,
    lag1_autocorrelation,
)
from repro.core.dependent_session import DependentEarlSession
from repro.core.figure4 import Figure4Sampler
from repro.core.earl import (
    BootstrapReducer,
    EarlJob,
    EarlSession,
    StatisticReducer,
    estimate_record_count,
    run_grouped_stock_job,
    run_stock_job,
)
from repro.core.grouped import (
    ALLOCATION_SCHEDULE,
    GroupEstimate,
    GroupedEarlSession,
    GroupedResult,
    GroupedSnapshot,
    Measure,
)
from repro.core.estimators import (
    EstimatorState,
    Statistic,
    available_statistics,
    get_statistic,
    register_statistic,
)
from repro.core.intra import (
    SharedBootstrapResult,
    average_optimal_saving,
    optimal_sharing,
    optimal_sharing_search,
    prob_identical_fraction,
    shared_prefix_bootstrap,
    work_saved,
    work_saved_curve,
)
from repro.core.jackknife import JackknifeResult, jackknife
from repro.core.jackknife_stage import (
    JACKKNIFE_SAFE_STATISTICS,
    JackknifeEstimationStage,
)
from repro.core.result import EarlResult, IterationRecord, ProgressSnapshot
from repro.core.sketch import ITEM_BYTES, Sketch
from repro.core.ssabe import (
    SSABEResult,
    estimate_num_bootstraps,
    estimate_parameters,
    estimate_sample_size,
    theoretical_sample_size_mean,
)

__all__ = [
    # drivers
    "EarlSession", "EarlJob", "EarlConfig", "EarlResult", "IterationRecord",
    "ProgressSnapshot",
    "BootstrapReducer", "StatisticReducer", "run_stock_job",
    "run_grouped_stock_job", "estimate_record_count",
    # grouped sessions
    "GroupedEarlSession", "Measure", "GroupEstimate", "GroupedSnapshot",
    "GroupedResult", "ALLOCATION_SCHEDULE",
    # bootstrap / jackknife
    "bootstrap", "BootstrapResult", "bootstrap_cv_curve", "bootstrap_cv_vs_n",
    "bootstrap_file",
    "exact_bootstrap_count", "theoretical_num_bootstraps",
    "jackknife", "JackknifeResult",
    "JackknifeEstimationStage", "JACKKNIFE_SAFE_STATISTICS",
    # accuracy
    "AccuracyEstimate", "AccuracyEstimationStage", "summarize_distribution",
    "get_error_metric", "ERROR_METRICS",
    # ssabe
    "SSABEResult", "estimate_parameters", "estimate_num_bootstraps",
    "estimate_sample_size", "theoretical_sample_size_mean",
    # delta maintenance
    "ResampleSet", "Resample", "NaiveMaintainer", "SketchMaintainer",
    "MaintenanceCounters", "Sketch", "ITEM_BYTES",
    "MAINTENANCE_NAIVE", "MAINTENANCE_OPTIMIZED", "MAINTENANCE_NONE",
    # intra-iteration
    "prob_identical_fraction", "work_saved", "work_saved_curve",
    "optimal_sharing", "optimal_sharing_search",
    "average_optimal_saving", "shared_prefix_bootstrap",
    "SharedBootstrapResult",
    # statistics
    "Statistic", "EstimatorState", "get_statistic", "register_statistic",
    "available_statistics",
    # corrections
    "get_correction", "no_correction", "inverse_fraction", "CORRECTIONS",
    # categorical / dependent
    "proportion_estimate", "z_test_proportion",
    "CategoricalEarlSession",
    "required_sample_size_proportion", "CategoricalEstimate",
    "block_bootstrap", "auto_block_length", "lag1_autocorrelation",
    "DependentEarlSession",
    "Figure4Sampler",
    # sampler names
    "SAMPLER_PREMAP", "SAMPLER_POSTMAP",
]
