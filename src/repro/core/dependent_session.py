"""EARL for inter-dependent data (paper Appendix A, end to end).

The core EARL loop assumes i.i.d. records; for b-dependent data (time
series) two pieces must change, and the appendix names both:

* **sampling** — "instead of a single observation, blocks of consecutive
  observations are selected.  Such a sampling method insures that
  dependencies are preserved amongst data-items";
* **error estimation** — the bootstrap "can be modified to support
  non-iid (dependent) data when performing resampling", i.e. the
  moving-block bootstrap.

:class:`DependentEarlSession` is the resulting driver: it grows a sample
of random *contiguous blocks* of the series and estimates the error with
the (circular) moving-block bootstrap, terminating at ``cv ≤ σ`` exactly
like the i.i.d. loop.  The block length defaults to the automatic
selector (after Politis & White, whom the paper cites).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.accuracy import AccuracyEstimate, summarize_distribution
from repro.core.config import EarlConfig
from repro.core.correction import CorrectionLike, get_correction
from repro.core.dependent import auto_block_length, block_bootstrap
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.result import EarlResult, IterationRecord
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive_int


class DependentEarlSession:
    """Early-approximation loop over a b-dependent series.

    Parameters
    ----------
    series:
        The ordered observations (dependence structure lives in the
        order, so no shuffling happens anywhere).
    statistic:
        Statistic of interest (any registered name or callable).
    config:
        Standard :class:`EarlConfig`; ``B_override`` sets the number of
        block-bootstrap resamples (default 30), ``n_override`` the
        initial sample size.
    block_length:
        Dependence length ``b``; ``None`` selects it automatically from
        the first sampled blocks.
    """

    #: Block-bootstrap resamples when no override is given.
    DEFAULT_B = 30

    def __init__(self, series: Sequence[float],
                 statistic: StatisticLike = "mean", *,
                 config: Optional[EarlConfig] = None,
                 block_length: Optional[int] = None,
                 correction: CorrectionLike = "auto") -> None:
        self._series = np.asarray(series, dtype=float)
        if self._series.ndim != 1 or self._series.size < 4:
            raise ValueError("series must be 1-D with at least 4 points")
        self._stat = get_statistic(statistic)
        self._config = config or EarlConfig()
        if block_length is not None:
            check_positive_int("block_length", block_length)
        self._block_length = block_length
        self._correction = get_correction(correction, self._stat.name)

    # ------------------------------------------------------------------ run
    def run(self) -> EarlResult:
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        series = self._series
        N = series.size
        B = cfg.B_override or self.DEFAULT_B

        # -------------------------------------------------- block length
        # Estimate b from an initial contiguous probe (dependence is a
        # local property, so a prefix window suffices).
        probe = series[:min(N, max(cfg.min_pilot_size * 4, 512))]
        b = self._block_length or auto_block_length(probe)
        b = max(1, min(b, N // 2))

        # --------------------------------------------------- sample loop
        n_target = cfg.n_override or max(cfg.min_pilot_size,
                                         math.ceil(cfg.pilot_fraction * N))
        n_target = max(n_target, 2 * b)
        blocks: List[np.ndarray] = []
        sampled = 0
        iterations: List[IterationRecord] = []
        estimate: Optional[AccuracyEstimate] = None
        for iteration in range(1, cfg.max_iterations + 1):
            while sampled < min(n_target, N):
                start = int(rng.integers(0, max(1, N - b + 1)))
                block = series[start:start + b]
                blocks.append(block)
                sampled += block.size
            sample = np.concatenate(blocks)
            boot = block_bootstrap(sample, self._stat, B=B,
                                   block_length=b, circular=True, seed=rng)
            estimate = summarize_distribution(
                boot.estimates, boot.point_estimate, sample.size,
                metric=cfg.error_metric, confidence=cfg.confidence)
            expand = (not estimate.meets(cfg.sigma)
                      and sampled < N
                      and iteration < cfg.max_iterations)
            iterations.append(IterationRecord(
                iteration=iteration, sample_size=sampled,
                accuracy=estimate, simulated_seconds=0.0, expanded=expand))
            if not expand:
                break
            n_target = min(N, math.ceil(sampled * cfg.expansion_factor))

        assert estimate is not None
        p = min(1.0, sampled / N)
        corrected = self._correction(estimate.estimate, p)
        result = EarlResult(
            estimate=corrected,
            uncorrected_estimate=estimate.estimate,
            error=estimate.error,
            achieved=estimate.meets(cfg.sigma),
            sigma=cfg.sigma,
            statistic=self._stat.name,
            n=sampled,
            B=B,
            population_size=N,
            sample_fraction=p,
            used_fallback=False,
            simulated_seconds=0.0,
            iterations=iterations,
            ssabe=None,
            accuracy=estimate,
            block_length=b,
        )
        return result
