"""Intra-iteration resampling optimization (paper §4.2).

Within one bootstrap round, resamples of a small sample overlap heavily.
Equation 4 gives the probability that a fraction ``y`` of a resample is
identical to (shared with) another resample::

    P(X = y) = n! / ((n - y·n)! · n^{y·n})

— e.g. for n = 29, y = 0.3 the probability is ≈ 0.35: "for roughly 1 in
3 resamples, 30% of each resample will be identical to one-another".
The expected work saved by reusing the shared part is ``P(X=y) · y``;
maximizing it over ``y`` (unimodal, so a binary/ternary search works)
yields the sharing fraction EARL uses.  The paper reports >20 % average
saving, best for small samples — Fig. 3 plots the whole surface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimators import StatisticLike, get_statistic
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_fraction, check_positive_int


def prob_identical_fraction(n: int, y: float) -> float:
    """Equation 4: probability that a ``y`` fraction of a resample is
    shared with another resample.

    Computed in log space: ``exp(ln n! − ln (n−k)! − k·ln n)`` with
    ``k = ⌊y·n⌋``, to stay finite for large ``n``.  Flooring matches the
    paper's arithmetic: for n = 29, y = 0.3 it reports P ≈ 0.35, which is
    the k = 8 value (k = ⌊8.7⌋), not the k = 9 one (≈ 0.25).
    """
    check_positive_int("n", n)
    check_fraction("y", y, inclusive_low=True)
    k = int(math.floor(y * n))
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    log_p = math.lgamma(n + 1) - math.lgamma(n - k + 1) - k * math.log(n)
    # lgamma rounding can nudge an exact 1.0 past the boundary.
    return min(1.0, math.exp(log_p))


def work_saved(n: int, y: float) -> float:
    """Expected fraction of bootstrap work saved at sharing level ``y``:
    ``P(X=y) · y`` (§4.2)."""
    return prob_identical_fraction(n, y) * y


def optimal_sharing(n: int) -> Tuple[float, float]:
    """``(y*, saved*)`` maximizing the expected work saved for sample
    size ``n``.

    The objective is unimodal in the discrete shared count ``k``; the
    paper uses binary search, we use the equivalent exact scan over the
    ``n`` candidate values (``n`` is small wherever this matters).
    """
    check_positive_int("n", n)
    best_y, best_saved = 0.0, 0.0
    for k in range(1, n + 1):
        y = k / n
        saved = work_saved(n, y)
        if saved > best_saved:
            best_y, best_saved = y, saved
    return best_y, best_saved


def optimal_sharing_search(n: int) -> Tuple[float, float]:
    """``(y*, saved*)`` via the paper's search strategy (§4.2: "the
    optimal y for given n can be found using a simple binary search").

    The objective ``P(X=k/n)·k/n`` is unimodal in the discrete shared
    count ``k``, so a ternary search over ``k`` converges to the same
    optimum the exhaustive scan finds, in O(log n) evaluations — the
    behaviour the paper relies on.
    """
    check_positive_int("n", n)
    lo, hi = 1, n
    while hi - lo > 2:
        m1 = lo + (hi - lo) // 3
        m2 = hi - (hi - lo) // 3
        if work_saved(n, m1 / n) < work_saved(n, m2 / n):
            lo = m1 + 1
        else:
            hi = m2 - 1
    best_k = max(range(lo, hi + 1), key=lambda k: work_saved(n, k / n))
    return best_k / n, work_saved(n, best_k / n)


def work_saved_curve(sample_sizes: Sequence[int], y_values: Sequence[float]
                     ) -> List[Tuple[int, float, float]]:
    """The Fig. 3 surface: ``(n, y, saved)`` for every combination."""
    rows: List[Tuple[int, float, float]] = []
    for n in sample_sizes:
        for y in y_values:
            rows.append((int(n), float(y), work_saved(int(n), float(y))))
    return rows


def average_optimal_saving(sample_sizes: Sequence[int]) -> float:
    """Mean of the optimal saving over a range of sample sizes.

    The paper's headline: "on average we save over 20% of work using our
    Intra Iteration Optimization" — asserted by the Fig. 3 benchmark
    over the small-sample range where the optimization applies.
    """
    savings = [optimal_sharing(int(n))[1] for n in sample_sizes]
    if not savings:
        raise ValueError("sample_sizes cannot be empty")
    return float(np.mean(savings))


@dataclass
class SharedBootstrapResult:
    """Outcome of a shared-prefix bootstrap round."""

    estimates: np.ndarray
    point_estimate: float
    n: int
    B: int
    shared_fraction: float
    ops_performed: int
    ops_baseline: int

    @property
    def ops_saved_fraction(self) -> float:
        """Measured fraction of state-update work avoided."""
        if self.ops_baseline == 0:
            return 0.0
        return 1.0 - self.ops_performed / self.ops_baseline


def shared_prefix_bootstrap(sample: Sequence[float],
                            statistic: StatisticLike = "mean", *,
                            B: int = 30,
                            y: Optional[float] = None,
                            seed: SeedLike = None) -> SharedBootstrapResult:
    """Monte-Carlo bootstrap that reuses a shared prefix across resamples.

    With probability ``P(X=y)`` a resample reuses the previous resample's
    first ``y·n`` draws (their estimator state is cloned instead of
    rebuilt), otherwise it is drawn from scratch.  Each resample remains
    marginally a valid uniform-with-replacement draw — sharing only
    introduces (mild) correlation between resamples, the trade the paper
    accepts for ≈20 % less work.

    ``y=None`` picks the optimal fraction via :func:`optimal_sharing`.
    """
    check_positive_int("B", B)
    stat = get_statistic(statistic)
    data = np.asarray(sample, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError("sample must be a non-empty 1-D sequence")
    rng = ensure_rng(seed)
    n = data.size
    if y is None:
        y, _ = optimal_sharing(n)
    else:
        check_fraction("y", y, inclusive_low=True)
    k = int(math.floor(y * n))
    p_share = prob_identical_fraction(n, y)

    estimates = np.empty(B)
    ops = 0
    prev_prefix_state = None
    prev_prefix_draws: Optional[np.ndarray] = None
    for b in range(B):
        share = (prev_prefix_state is not None
                 and k > 0
                 and rng.random() < p_share)
        if share:
            state = prev_prefix_state.copy()
            remainder = rng.integers(0, n, size=n - k)
            for i in remainder:
                state.add(data[int(i)])
            ops += n - k
        else:
            prefix = rng.integers(0, n, size=k)
            prefix_state = stat.make_state()
            for i in prefix:
                prefix_state.add(data[int(i)])
            ops += k
            prev_prefix_state = prefix_state
            prev_prefix_draws = prefix
            state = prefix_state.copy()
            remainder = rng.integers(0, n, size=n - k)
            for i in remainder:
                state.add(data[int(i)])
            ops += n - k
        estimates[b] = state.result()
    return SharedBootstrapResult(
        estimates=estimates, point_estimate=stat(data), n=n, B=B,
        shared_fraction=y, ops_performed=ops, ops_baseline=B * n)
