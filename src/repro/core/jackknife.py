"""Delete-1 jackknife (paper §3's alternative resampling baseline).

The jackknife recomputes the statistic on the ``n`` leave-one-out
subsamples.  It needs no randomness and exactly ``n`` recomputations,
but — as the paper stresses (§3, citing Efron 1979) — it is *invalid for
non-smooth statistics such as the median*: the leave-one-out medians take
at most two distinct values, so the variance estimate does not converge.
EARL therefore standardizes on the bootstrap; this module exists as the
comparison baseline and as the witness for that failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import StatisticLike, get_statistic
from repro.util.stats import coefficient_of_variation


@dataclass
class JackknifeResult:
    """Leave-one-out replicates and derived accuracy measures."""

    replicates: np.ndarray
    point_estimate: float
    n: int

    @property
    def mean(self) -> float:
        return float(np.mean(self.replicates))

    @property
    def variance(self) -> float:
        """Jackknife variance: ``(n-1)/n · Σ(θ̂ᵢ − θ̄)²``."""
        n = self.n
        if n < 2:
            return 0.0
        dev = self.replicates - self.mean
        return float((n - 1) / n * np.sum(dev * dev))

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def cv(self) -> float:
        return coefficient_of_variation(self.mean, self.std)

    @property
    def bias(self) -> float:
        """Jackknife bias estimate: ``(n-1)(θ̄ − θ̂)``."""
        return (self.n - 1) * (self.mean - self.point_estimate)


def jackknife(sample, statistic: StatisticLike = "mean") -> JackknifeResult:
    """Delete-1 jackknife of ``statistic`` over ``sample``.

    The mean/sum fast paths run in O(n); other statistics pay the generic
    O(n²) leave-one-out loop — the fixed, often high resample requirement
    the paper contrasts with the bootstrap's tunable ``B``.
    """
    stat = get_statistic(statistic)
    data = np.asarray(sample, dtype=float)
    if data.ndim != 1 or data.size < 2:
        raise ValueError("jackknife needs a 1-D sample with >= 2 items")
    n = data.size
    if stat.name == "mean":
        total = data.sum()
        replicates = (total - data) / (n - 1)
    elif stat.name == "sum":
        replicates = data.sum() - data
    else:
        mask = ~np.eye(n, dtype=bool)
        replicates = np.array([
            stat(data[mask[i]]) for i in range(n)
        ])
    return JackknifeResult(replicates=replicates,
                           point_estimate=stat(data), n=n)
