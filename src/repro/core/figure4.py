"""The paper's Figure 4 API, ported faithfully.

Figure 4 shows "an example of how a user job would work with the EARL
framework": a ``Sampler`` object is initialized with the dataset path,
``GenerateSamples(sample_size, num_resamples)`` draws the sample and its
resamples, the user's job runs once per resample, an AES job folds the
results into an updated error, and
``UpdateSampleSizeAndNumResamples()`` adjusts the parameters (falling
back to ``sample_size = N, num_resamples = 1`` when early approximation
is not possible) — all inside ``while (error > sigma)``.

:class:`Figure4Sampler` exposes exactly those steps over this library's
substrate, for users who want the paper's explicit loop rather than the
packaged :class:`~repro.core.earl.EarlJob` driver:

>>> s = Figure4Sampler(cluster, statistic="mean", seed=7)   # doctest: +SKIP
>>> s.init("/data/values")
>>> while s.error is None or s.error > sigma:
...     s.generate_samples(s.sample_size, s.num_resamples)
...     estimates = s.run_user_job()
...     s.run_aes_job(estimates)
...     s.update_sample_size_and_num_resamples(sigma)
>>> s.result()
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.accuracy import AccuracyEstimate, summarize_distribution
from repro.core.bootstrap import bootstrap
from repro.core.earl import estimate_record_count
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.ssabe import estimate_parameters
from repro.sampling.premap import PreMapSampler
from repro.util.rng import SeedLike, ensure_rng
from repro.util.validation import check_positive_int


class Figure4Sampler:
    """Step-by-step EARL loop in the shape of the paper's Figure 4."""

    def __init__(self, cluster: Cluster, *,
                 statistic: StatisticLike = "mean",
                 initial_sample_size: int = 128,
                 initial_num_resamples: int = 20,
                 seed: SeedLike = None) -> None:
        check_positive_int("initial_sample_size", initial_sample_size)
        check_positive_int("initial_num_resamples", initial_num_resamples)
        self._cluster = cluster
        self._stat = get_statistic(statistic)
        self._rng = ensure_rng(seed)
        self.sample_size = initial_sample_size
        self.num_resamples = initial_num_resamples
        self.error: Optional[float] = None
        self.simulated_seconds = 0.0
        self._sampler: Optional[PreMapSampler] = None
        self._population: Optional[int] = None
        self._sample_values: List[float] = []
        self._resample_estimates: Optional[np.ndarray] = None
        self._accuracy: Optional[AccuracyEstimate] = None
        self._full_data_mode = False

    # --------------------------------------------------------------- s.Init
    def init(self, path: str) -> None:
        """``s.Init(path_string)`` — bind the sampler to the dataset."""
        self._sampler = PreMapSampler(self._cluster.hdfs, path)
        self._population, probe_s = estimate_record_count(self._cluster,
                                                          path)
        self.simulated_seconds += probe_s
        self._sample_values = []
        self._resample_estimates = None
        self._accuracy = None
        self.error = None
        self._full_data_mode = False

    # ------------------------------------------------------ GenerateSamples
    def generate_samples(self, sample_size: int, num_resamples: int) -> None:
        """``s.GenerateSamples(sample_size, num_resamples)``.

        Grows the drawn sample to ``sample_size`` lines (the pre-map
        sampler never re-reads already-delivered lines) and records the
        resample count for the next user-job round.
        """
        if self._sampler is None:
            raise RuntimeError("call init() first")
        check_positive_int("sample_size", sample_size)
        check_positive_int("num_resamples", num_resamples)
        self.sample_size = sample_size
        self.num_resamples = num_resamples
        target = min(sample_size, self._population or sample_size)
        if target > self._sampler.sampled_count:
            ledger = self._cluster.new_ledger()
            self._sampler.set_total_target(target)
            for split in self._sampler.splits:
                for _, line in self._sampler.read(
                        self._cluster.hdfs, split, ledger, self._rng):
                    self._sample_values.append(float(line))
            self.simulated_seconds += ledger.total_seconds

    # ------------------------------------------------------- user job round
    def run_user_job(self) -> np.ndarray:
        """Run the user's job once per resample; returns the B estimates.

        (The paper's loop submits ``num_resamples`` MR jobs; here each
        evaluation is the statistic on one bootstrap resample, charged
        as resampling work.)
        """
        if not self._sample_values:
            raise RuntimeError("generate_samples() produced no data")
        sample = np.asarray(self._sample_values)
        boot = bootstrap(sample, self._stat, B=self.num_resamples,
                         seed=self._rng)
        ledger = self._cluster.new_ledger()
        ledger.charge_cpu_records(self.num_resamples * sample.size)
        self.simulated_seconds += ledger.total_seconds
        self._resample_estimates = boot.estimates
        self._point_estimate = boot.point_estimate
        return boot.estimates

    # ------------------------------------------------------------- AES job
    def run_aes_job(self, estimates: Optional[np.ndarray] = None
                    ) -> AccuracyEstimate:
        """``runJob(aes_job)`` — fold the user-job outputs into an error."""
        if estimates is None:
            estimates = self._resample_estimates
        if estimates is None:
            raise RuntimeError("run_user_job() must produce estimates first")
        self._accuracy = summarize_distribution(
            np.asarray(estimates), self._point_estimate,
            len(self._sample_values))
        self.error = self._accuracy.error
        return self._accuracy

    # -------------------------------------- UpdateSampleSizeAndNumResamples
    def update_sample_size_and_num_resamples(self, sigma: float,
                                             tau: float = 0.01) -> None:
        """``UpdateSampleSizeAndNumResamples()`` (Figure 4's last step).

        Re-estimates (B, n) via SSABE from the current sample.  "In cases
        where early approximation is not possible, sample_size and
        num_resamples will be set to N and 1 respectively."
        """
        if self.error is not None and self.error <= sigma:
            return  # loop will exit; nothing to update
        if not self._sample_values or self._population is None:
            raise RuntimeError("nothing sampled yet")
        pilot = np.asarray(self._sample_values)
        if pilot.size < 32:
            self.sample_size = min(self._population, self.sample_size * 2)
            return
        ssabe = estimate_parameters(pilot, self._population, self._stat,
                                    sigma=sigma, tau=tau, seed=self._rng)
        if ssabe.fallback_to_exact:
            self.sample_size = self._population
            self.num_resamples = 1
            self._full_data_mode = True
            return
        self.sample_size = max(ssabe.n,
                               math.ceil(len(self._sample_values) * 1.5))
        self.num_resamples = ssabe.B

    # --------------------------------------------------------------- result
    @property
    def full_data_mode(self) -> bool:
        """Whether the §3.1 fallback was triggered."""
        return self._full_data_mode

    def result(self) -> AccuracyEstimate:
        """The latest accuracy estimate (the early result + its error)."""
        if self._accuracy is None:
            raise RuntimeError("run_aes_job() has not produced a result")
        return self._accuracy

    def run_loop(self, sigma: float, *, tau: float = 0.01,
                 max_iterations: int = 12) -> AccuracyEstimate:
        """Convenience: execute Figure 4's ``while (error > sigma)`` loop."""
        check_positive_int("max_iterations", max_iterations)
        for _ in range(max_iterations):
            self.generate_samples(self.sample_size, self.num_resamples)
            self.run_user_job()
            self.run_aes_job()
            if (self.error is not None and self.error <= sigma) \
                    or self._full_data_mode:
                break
            before = (self.sample_size, self.num_resamples)
            self.update_sample_size_and_num_resamples(sigma, tau)
            if (self.sample_size, self.num_resamples) == before \
                    and self._sampler.sampled_count >= (self._population or 0):
                break
        return self.result()
