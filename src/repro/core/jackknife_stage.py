"""Jackknife-based accuracy estimation (paper §8, future work).

"A direction for the future is to investigate other resampling methods
(e.g., jackknife) that although are not as general and as robust as
bootstrapping can still provide better performance in specific
situations."  This module implements that direction: a drop-in
alternative to :class:`~repro.core.accuracy.AccuracyEstimationStage`
whose error estimate comes from delete-1 jackknife replicates instead of
Monte-Carlo bootstrap resamples.

When it wins: for *smooth* statistics with an O(n) leave-one-out form
(mean, sum), one jackknife pass costs ``n`` state operations versus the
bootstrap's ``B × n`` — no resample maintenance, no sketches, no extra
randomness.  When it loses: for non-smooth statistics (median,
quantiles) the jackknife variance estimate is inconsistent (§3), so
:class:`JackknifeEstimationStage` refuses those statistics instead of
silently returning garbage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostLedger
from repro.core.accuracy import AccuracyEstimate
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.jackknife import jackknife
from repro.util.stats import coefficient_of_variation

#: Statistics whose delete-1 jackknife is known to be consistent and
#: cheap; everything else is refused (the paper's stated limitation).
JACKKNIFE_SAFE_STATISTICS = frozenset({"mean", "sum", "variance", "std"})


class JackknifeEstimationStage:
    """Stateful jackknife error estimation over a growing sample.

    API-compatible with :class:`AccuracyEstimationStage` (``offer`` /
    ``history`` / ``sample_size`` / ``work_ops`` / ledger hooks), so the
    EARL drivers can switch estimation strategies via configuration.
    """

    def __init__(self, statistic: StatisticLike, *,
                 confidence: float = 0.95) -> None:
        self._stat = get_statistic(statistic)
        if self._stat.name not in JACKKNIFE_SAFE_STATISTICS:
            raise ValueError(
                f"jackknife estimation is unreliable for "
                f"{self._stat.name!r} (§3: 'jackknife does not work for "
                "many functions such as the median'); use the bootstrap")
        self._confidence = confidence
        self._sample: List[float] = []
        self._history: List[AccuracyEstimate] = []
        self._work_ops = 0
        self._ledger: Optional[CostLedger] = None
        self._io_scale = 1.0

    # ------------------------------------------------------- driver hooks
    def set_ledger(self, ledger: Optional[CostLedger]) -> None:
        self._ledger = ledger

    def set_io_scale(self, io_scale: float) -> None:
        self._io_scale = io_scale

    @property
    def work_ops(self) -> int:
        """State operations performed so far (one per replicate)."""
        return self._work_ops

    @property
    def history(self) -> List[AccuracyEstimate]:
        return list(self._history)

    @property
    def sample_size(self) -> int:
        return len(self._sample)

    # ------------------------------------------------------------ estimate
    def offer(self, delta: Sequence[float]) -> AccuracyEstimate:
        """Extend the sample and refresh the jackknife error estimate."""
        self._sample.extend(float(v) for v in delta)
        if len(self._sample) < 2:
            raise ValueError("jackknife needs at least 2 observations")
        data = np.asarray(self._sample)
        result = jackknife(data, self._stat)
        # one replicate per observation (the O(n) fast path for
        # mean/sum; variance/std pay the generic loop — still counted
        # as n replicate evaluations)
        self._work_ops += result.n

        point = result.point_estimate
        std = result.std
        cv = coefficient_of_variation(point, std)
        z = 1.96 if self._confidence == 0.95 else \
            float(abs(np.round(
                _normal_ppf(0.5 + self._confidence / 2.0), 6)))
        estimate = AccuracyEstimate(
            estimate=point,
            point_estimate=point,
            error=cv,
            cv=cv,
            std=std,
            variance=result.variance,
            bias=result.bias,
            ci_low=point - z * std,
            ci_high=point + z * std,
            n=result.n,
            B=result.n,   # n leave-one-out replicates
        )
        self._history.append(estimate)
        return estimate

    def error_stability(self) -> Optional[float]:
        if len(self._history) < 2:
            return None
        return abs(self._history[-1].cv - self._history[-2].cv)


def _normal_ppf(q: float) -> float:
    from scipy import stats as sp_stats

    return float(sp_stats.norm.ppf(q))
