"""Result correction for sample-based computation (paper §2.1).

Some statistics computed on a fraction ``p`` of the data need adjustment
to estimate the full-data answer — the canonical example is SUM, which
must be scaled by ``1/p``.  "As the system is unaware of the internal
semantics of user's MR task, we allow our users to specify their own
correction logic in correct() with a system provided parameter p."

This module provides the built-in policies plus a registry keyed by
statistic name so the EARL drivers can pick the right default
(``"auto"``): extensive statistics (sum, count) scale, intensive ones
(mean, median, quantiles, proportions, correlation) do not.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from repro.util.validation import check_fraction

#: A correction maps ``(result, p)`` to the corrected result, where ``p``
#: is the fraction of the data actually used.
CorrectionFn = Callable[[float, float], float]


def no_correction(result: float, p: float) -> float:
    """Identity — right for intensive statistics (mean, median, ...)."""
    check_fraction("p", p)
    return result


def inverse_fraction(result: float, p: float) -> float:
    """Scale by ``1/p`` — right for extensive statistics (SUM, COUNT)."""
    check_fraction("p", p)
    return result / p


CORRECTIONS: Dict[str, CorrectionFn] = {
    "none": no_correction,
    "inverse_fraction": inverse_fraction,
}

#: Statistics whose full-data value scales with the data size.
_EXTENSIVE_STATISTICS = frozenset({"sum", "count"})

CorrectionLike = Union[str, CorrectionFn]


def get_correction(spec: CorrectionLike, statistic_name: str = "") -> CorrectionFn:
    """Resolve a correction policy.

    ``spec`` may be a policy name, a callable, or ``"auto"`` — which
    picks :func:`inverse_fraction` for extensive statistics and
    :func:`no_correction` otherwise.
    """
    if callable(spec):
        return spec
    if spec == "auto":
        return (inverse_fraction if statistic_name in _EXTENSIVE_STATISTICS
                else no_correction)
    try:
        return CORRECTIONS[spec]
    except KeyError:
        raise KeyError(f"unknown correction {spec!r}; "
                       f"known: {sorted(CORRECTIONS)} or 'auto'") from None
