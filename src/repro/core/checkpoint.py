"""Round-boundary checkpoints built on deterministic replay.

The engines never serialize bootstrap state: every one of them is a
pure function of (data, spec, seed) plus the round boundaries at which
losses were reported, so a checkpoint is just that provenance —
``{"rounds_completed": k, "loss_events": [...]}`` — and recovery is
re-running a *fresh, identically-constructed* engine, re-firing each
recorded loss at the same boundary, and discarding the first ``k``
snapshots.  The byte-identical-reruns invariant guarantees the
remaining stream matches an uninterrupted run exactly.

:func:`replay_stream` is the shared recovery driver;
``EarlSession.restore`` / ``SessionManager.restore`` /
``GroupedEarlSession.restore`` delegate to it.  A checkpoint whose
loss events all carry integer (or ``None``) seeds is JSON-safe, so it
can ride a WAL entry; a generator-valued seed checkpoints but will not
serialize.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence


class CheckpointReplayError(RuntimeError):
    """Replay diverged: the fresh engine's stream ended before reaching
    the checkpointed round.  The construction differs from the original
    run (changed data, config or seed) and the checkpoint is unusable —
    callers should finalize best-so-far instead of guessing."""


def loss_event(emitted: int, fraction: float, seed: Any,
               keys: Any = None) -> Dict[str, Any]:
    """The recorded form of one applied loss: the snapshot boundary it
    landed at plus the exact ``report_loss`` arguments."""
    doc: Dict[str, Any] = {"at": int(emitted), "fraction": float(fraction),
                           "seed": seed}
    if keys is not None:
        doc["keys"] = sorted(keys, key=repr)
    return doc


def checkpoint_doc(emitted: int,
                   losses: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    return {"rounds_completed": int(emitted),
            "loss_events": [dict(event) for event in losses]}


def replay_stream(engine: Any,
                  checkpoint: Mapping[str, Any]) -> Iterator[Any]:
    """Resume ``engine`` from ``checkpoint``: yield only the snapshots
    past ``rounds_completed``, byte-identical to an uninterrupted run.

    ``engine`` must be fresh (never streamed) and constructed exactly
    like the checkpointed one.  Each recorded loss is re-fired via
    ``engine.report_loss`` once the local stream has emitted ``at``
    snapshots — i.e. while the engine is parked at the same round
    boundary the loss originally landed on — so the engine re-applies
    it at the identical point.  Raises :class:`CheckpointReplayError`
    if the stream dries up before the checkpointed round.
    """
    rounds = int(checkpoint.get("rounds_completed", 0))
    if rounds < 0:
        raise ValueError("rounds_completed cannot be negative")
    pending = sorted((dict(e) for e in checkpoint.get("loss_events", ())),
                     key=lambda e: int(e["at"]))

    def fire_due(emitted: int) -> None:
        while pending and int(pending[0]["at"]) <= emitted:
            event = pending.pop(0)
            kwargs: Dict[str, Any] = {"seed": event.get("seed")}
            if event.get("keys") is not None:
                kwargs["keys"] = event["keys"]
            engine.report_loss(event["fraction"], **kwargs)

    stream = engine.stream()
    emitted = 0
    while True:
        fire_due(emitted)
        try:
            item = next(stream)
        except StopIteration:
            if emitted < rounds:
                raise CheckpointReplayError(
                    f"stream ended after {emitted} snapshots, before the "
                    f"checkpointed round {rounds}; the engine was not "
                    "reconstructed identically") from None
            return
        if emitted >= rounds:
            yield item
        emitted += 1
