"""Statistics of interest ``f`` and their incremental states.

EARL's reduce extension represents a user function as a *state* that can
be updated without reprocessing the whole sample (§2.1), and its delta-
maintained bootstrap (§4.1) additionally needs to *remove* single items
from a state when a resample sheds data during maintenance.  This module
provides both views of every statistic used in the evaluation:

* a **batch** form (vectorized over a matrix of resamples — the fast
  path for plain Monte-Carlo bootstrapping), and
* an **incremental state** with ``add`` / ``remove`` / ``merge`` /
  ``result`` (the path delta maintenance uses).

A registry maps statistic names to both forms; arbitrary callables are
supported through a functional fallback state that keeps raw values.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.util.stats import RunningStats

# --------------------------------------------------------------------------
# Incremental states
# --------------------------------------------------------------------------


class EstimatorState:
    """Interface of an incremental statistic state.

    Besides the scalar ``add``/``remove``, every state accepts whole
    *batches* through ``add_many``/``remove_many`` — the entry point of
    the vectorized delta-maintenance kernel (§4.1 does O(|Δs|) state
    updates per resample; the batch forms do them in one NumPy call
    instead of |Δs| Python calls).  The default implementations fall
    back to the scalar loop, so arbitrary user states stay correct; the
    registered statistics override them with true NumPy kernels.  A
    batch op is equivalent to the corresponding scalar loop — same
    final count, same result up to floating-point reassociation.
    """

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def remove(self, value: Any) -> None:
        raise NotImplementedError

    def add_many(self, values: Any) -> None:
        """Add every item of ``values`` (rows of a 2-D array are items)."""
        for value in values:
            self.add(value)

    def remove_many(self, values: Any) -> None:
        """Remove every item of ``values`` (batch analogue of ``remove``)."""
        for value in values:
            self.remove(value)

    def result(self) -> float:
        raise NotImplementedError

    def copy(self) -> "EstimatorState":
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class _SortedFloats:
    """Minimal sorted multiset of floats (bisect-based).

    Insert/remove are O(n) due to list shifting, which is fine for EARL's
    sample sizes (thousands); the pay-off is O(1) order statistics, which
    quantile states need on every ``result()`` call.
    """

    __slots__ = ("_data",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self._data: List[float] = sorted(float(v) for v in values)

    def insert(self, value: float) -> None:
        bisect.insort(self._data, value)

    def remove(self, value: float) -> None:
        idx = bisect.bisect_left(self._data, value)
        if idx >= len(self._data) or self._data[idx] != value:
            raise KeyError(f"value {value!r} not present")
        self._data.pop(idx)

    def insert_many(self, values: Iterable[float]) -> None:
        """Bulk insert: one O((n+m) log(n+m)) sort instead of ``m``
        O(n) shifting insertions."""
        incoming = np.asarray(values, dtype=float).ravel()
        if incoming.size == 0:
            return
        merged = np.concatenate([np.asarray(self._data), incoming])
        merged.sort()
        self._data = merged.tolist()

    def remove_many(self, values: Iterable[float]) -> None:
        """Bulk removal of a multiset of values (KeyError if any value
        — counting multiplicity — is not present)."""
        incoming = np.sort(np.asarray(values, dtype=float).ravel())
        m = incoming.size
        if m == 0:
            return
        arr = np.asarray(self._data)
        if arr.size == 0:
            raise KeyError(f"value {incoming[0]!r} not present")
        base = np.searchsorted(arr, incoming, side="left")
        # The i-th copy of a repeated value claims the i-th slot of its
        # equal run in ``arr`` (both arrays are sorted, so run ranks
        # line up).
        new_run = np.r_[True, incoming[1:] != incoming[:-1]]
        run_starts = np.flatnonzero(new_run)
        rank_in_run = np.arange(m) - run_starts[np.cumsum(new_run) - 1]
        idx = base + rank_in_run
        bad = (idx >= arr.size) | (arr[np.minimum(idx, arr.size - 1)]
                                   != incoming)
        if bad.any():
            missing = incoming[int(np.flatnonzero(bad)[0])]
            raise KeyError(f"value {missing!r} not present")
        self._data = np.delete(arr, idx).tolist()

    def kth(self, index: int) -> float:
        return self._data[index]

    def __len__(self) -> int:
        return len(self._data)

    def copy(self) -> "_SortedFloats":
        clone = _SortedFloats.__new__(_SortedFloats)
        clone._data = list(self._data)
        return clone

    def as_array(self) -> np.ndarray:
        return np.asarray(self._data)


class MeanState(EstimatorState):
    """Running mean (Welford add/remove)."""

    def __init__(self) -> None:
        self._stats = RunningStats()

    def add(self, value: Any) -> None:
        self._stats.add(float(value))

    def remove(self, value: Any) -> None:
        self._stats.remove(float(value))

    def add_many(self, values: Any) -> None:
        self._stats.add_values(np.asarray(values, dtype=float))

    def remove_many(self, values: Any) -> None:
        self._stats.remove_values(np.asarray(values, dtype=float))

    def merge(self, other: "MeanState") -> None:
        self._stats.merge(other._stats)

    def result(self) -> float:
        return self._stats.mean

    def copy(self) -> "MeanState":
        clone = MeanState.__new__(MeanState)
        clone._stats = self._stats.copy()
        return clone

    def __len__(self) -> int:
        return self._stats.count


class SumState(EstimatorState):
    """Running sum.  Pair with the ``1/p`` correction when sampled."""

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        self._sum += float(value)
        self._count += 1

    def remove(self, value: Any) -> None:
        if self._count == 0:
            raise ValueError("cannot remove from an empty SumState")
        self._sum -= float(value)
        self._count -= 1

    def add_many(self, values: Any) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        self._sum += float(arr.sum())
        self._count += arr.size

    def remove_many(self, values: Any) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size > self._count:
            raise ValueError("cannot remove from an empty SumState")
        self._sum -= float(arr.sum())
        self._count -= arr.size

    def merge(self, other: "SumState") -> None:
        self._sum += other._sum
        self._count += other._count

    def result(self) -> float:
        return self._sum

    def copy(self) -> "SumState":
        clone = SumState.__new__(SumState)
        clone._sum, clone._count = self._sum, self._count
        return clone

    def __len__(self) -> int:
        return self._count


class VarianceState(EstimatorState):
    """Sample variance (ddof=1)."""

    def __init__(self) -> None:
        self._stats = RunningStats()

    def add(self, value: Any) -> None:
        self._stats.add(float(value))

    def remove(self, value: Any) -> None:
        self._stats.remove(float(value))

    def add_many(self, values: Any) -> None:
        self._stats.add_values(np.asarray(values, dtype=float))

    def remove_many(self, values: Any) -> None:
        self._stats.remove_values(np.asarray(values, dtype=float))

    def merge(self, other: "VarianceState") -> None:
        self._stats.merge(other._stats)

    def result(self) -> float:
        return self._stats.variance()

    def copy(self) -> "VarianceState":
        clone = VarianceState.__new__(VarianceState)
        clone._stats = self._stats.copy()
        return clone

    def __len__(self) -> int:
        return self._stats.count


class StdState(VarianceState):
    """Sample standard deviation (ddof=1)."""

    def result(self) -> float:
        return self._stats.std()

    def copy(self) -> "StdState":
        clone = StdState.__new__(StdState)
        clone._stats = self._stats.copy()
        return clone


class QuantileState(EstimatorState):
    """Order-statistic state for quantiles (numpy 'linear' interpolation).

    ``remove`` is what the bootstrap's delta maintenance needs and what
    closed-form approaches cannot give for the median (§3: "jackknife
    does not work for many functions such as the median").
    """

    def __init__(self, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._q = q
        self._sorted = _SortedFloats()

    def add(self, value: Any) -> None:
        self._sorted.insert(float(value))

    def remove(self, value: Any) -> None:
        self._sorted.remove(float(value))

    def add_many(self, values: Any) -> None:
        self._sorted.insert_many(values)

    def remove_many(self, values: Any) -> None:
        self._sorted.remove_many(values)

    def result(self) -> float:
        n = len(self._sorted)
        if n == 0:
            raise ValueError("quantile of an empty state is undefined")
        position = self._q * (n - 1)
        lower = int(math.floor(position))
        upper = min(lower + 1, n - 1)
        frac = position - lower
        return (1 - frac) * self._sorted.kth(lower) + frac * self._sorted.kth(upper)

    def copy(self) -> "QuantileState":
        clone = QuantileState.__new__(QuantileState)
        clone._q = self._q
        clone._sorted = self._sorted.copy()
        return clone

    def __len__(self) -> int:
        return len(self._sorted)


class MedianState(QuantileState):
    """The paper's running example of a non-trivial statistic (Fig. 6)."""

    def __init__(self) -> None:
        super().__init__(0.5)

    def copy(self) -> "MedianState":
        clone = MedianState.__new__(MedianState)
        clone._q = self._q
        clone._sorted = self._sorted.copy()
        return clone


class ExtremeState(EstimatorState):
    """Min/max with removal (kept as a sorted multiset)."""

    def __init__(self, kind: str) -> None:
        if kind not in ("min", "max"):
            raise ValueError("kind must be 'min' or 'max'")
        self._kind = kind
        self._sorted = _SortedFloats()

    def add(self, value: Any) -> None:
        self._sorted.insert(float(value))

    def remove(self, value: Any) -> None:
        self._sorted.remove(float(value))

    def add_many(self, values: Any) -> None:
        self._sorted.insert_many(values)

    def remove_many(self, values: Any) -> None:
        self._sorted.remove_many(values)

    def result(self) -> float:
        n = len(self._sorted)
        if n == 0:
            raise ValueError(f"{self._kind} of an empty state is undefined")
        return self._sorted.kth(0 if self._kind == "min" else n - 1)

    def copy(self) -> "ExtremeState":
        clone = ExtremeState.__new__(ExtremeState)
        clone._kind = self._kind
        clone._sorted = self._sorted.copy()
        return clone

    def __len__(self) -> int:
        return len(self._sorted)


class ProportionState(EstimatorState):
    """Share of truthy values — the categorical-data statistic (App. A)."""

    def __init__(self) -> None:
        self._successes = 0
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1
        if value:
            self._successes += 1

    def remove(self, value: Any) -> None:
        if self._count == 0:
            raise ValueError("cannot remove from an empty ProportionState")
        self._count -= 1
        if value:
            self._successes -= 1

    def add_many(self, values: Any) -> None:
        arr = np.asarray(values)
        self._count += arr.size
        self._successes += int(np.count_nonzero(arr))

    def remove_many(self, values: Any) -> None:
        arr = np.asarray(values)
        if arr.size > self._count:
            raise ValueError("cannot remove from an empty ProportionState")
        self._count -= arr.size
        self._successes -= int(np.count_nonzero(arr))

    def merge(self, other: "ProportionState") -> None:
        self._successes += other._successes
        self._count += other._count

    def result(self) -> float:
        if self._count == 0:
            raise ValueError("proportion of an empty state is undefined")
        return self._successes / self._count

    def copy(self) -> "ProportionState":
        clone = ProportionState.__new__(ProportionState)
        clone._successes, clone._count = self._successes, self._count
        return clone

    def __len__(self) -> int:
        return self._count


class CorrelationState(EstimatorState):
    """Pearson correlation over ``(x, y)`` pairs.

    Sampling "is applicable to algorithms relying on capturing
    data-structure such as correlation analysis" (§3.3) — this state is
    the concrete witness used in tests and examples.
    """

    def __init__(self) -> None:
        self._n = 0
        self._sx = self._sy = 0.0
        self._sxx = self._syy = self._sxy = 0.0

    def add(self, value: Any) -> None:
        x, y = float(value[0]), float(value[1])
        self._n += 1
        self._sx += x
        self._sy += y
        self._sxx += x * x
        self._syy += y * y
        self._sxy += x * y

    def remove(self, value: Any) -> None:
        if self._n == 0:
            raise ValueError("cannot remove from an empty CorrelationState")
        x, y = float(value[0]), float(value[1])
        self._n -= 1
        self._sx -= x
        self._sy -= y
        self._sxx -= x * x
        self._syy -= y * y
        self._sxy -= x * y

    def _batch_sums(self, values: Any):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(
                "correlation batch needs an (m, 2) array of (x, y) pairs")
        x, y = arr[:, 0], arr[:, 1]
        return (arr.shape[0], float(x.sum()), float(y.sum()),
                float((x * x).sum()), float((y * y).sum()),
                float((x * y).sum()))

    def add_many(self, values: Any) -> None:
        m, sx, sy, sxx, syy, sxy = self._batch_sums(values)
        self._n += m
        self._sx += sx
        self._sy += sy
        self._sxx += sxx
        self._syy += syy
        self._sxy += sxy

    def remove_many(self, values: Any) -> None:
        m, sx, sy, sxx, syy, sxy = self._batch_sums(values)
        if m > self._n:
            raise ValueError("cannot remove from an empty CorrelationState")
        self._n -= m
        self._sx -= sx
        self._sy -= sy
        self._sxx -= sxx
        self._syy -= syy
        self._sxy -= sxy

    def merge(self, other: "CorrelationState") -> None:
        self._n += other._n
        self._sx += other._sx
        self._sy += other._sy
        self._sxx += other._sxx
        self._syy += other._syy
        self._sxy += other._sxy

    def result(self) -> float:
        if self._n < 2:
            raise ValueError("correlation needs at least two pairs")
        cov = self._n * self._sxy - self._sx * self._sy
        vx = self._n * self._sxx - self._sx * self._sx
        vy = self._n * self._syy - self._sy * self._sy
        denom = math.sqrt(max(vx, 0.0) * max(vy, 0.0))
        if denom == 0.0:
            return 0.0
        return cov / denom

    def copy(self) -> "CorrelationState":
        clone = CorrelationState.__new__(CorrelationState)
        clone._n = self._n
        clone._sx, clone._sy = self._sx, self._sy
        clone._sxx, clone._syy, clone._sxy = self._sxx, self._syy, self._sxy
        return clone

    def __len__(self) -> int:
        return self._n


class CountState(EstimatorState):
    """Record count — COUNT(*) pairs with the ``1/p`` correction (§2.1)."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any) -> None:
        self._count += 1

    def remove(self, value: Any) -> None:
        if self._count == 0:
            raise ValueError("cannot remove from an empty CountState")
        self._count -= 1

    def add_many(self, values: Any) -> None:
        self._count += len(values)

    def remove_many(self, values: Any) -> None:
        if len(values) > self._count:
            raise ValueError("cannot remove from an empty CountState")
        self._count -= len(values)

    def merge(self, other: "CountState") -> None:
        self._count += other._count

    def result(self) -> float:
        return float(self._count)

    def copy(self) -> "CountState":
        clone = CountState.__new__(CountState)
        clone._count = self._count
        return clone

    def __len__(self) -> int:
        return self._count


class FunctionalState(EstimatorState):
    """Fallback for arbitrary user functions: keep raw values, recompute.

    This is the "EARL works for arbitrary functions" escape hatch — no
    algebraic structure is assumed, so ``result()`` costs a full
    evaluation.  ``remove`` drops one occurrence of the value.
    """

    def __init__(self, fn: Callable[[np.ndarray], float]) -> None:
        self._fn = fn
        self._values: List[float] = []

    def add(self, value: Any) -> None:
        self._values.append(float(value))

    def remove(self, value: Any) -> None:
        self._values.remove(float(value))

    def add_many(self, values: Any) -> None:
        self._values.extend(np.asarray(values, dtype=float).ravel().tolist())

    def result(self) -> float:
        if not self._values:
            raise ValueError("result of an empty FunctionalState is undefined")
        return float(self._fn(np.asarray(self._values)))

    def copy(self) -> "FunctionalState":
        clone = FunctionalState.__new__(FunctionalState)
        clone._fn = self._fn
        clone._values = list(self._values)
        return clone

    def __len__(self) -> int:
        return len(self._values)


# --------------------------------------------------------------------------
# Batch (vectorized) forms and the registry
# --------------------------------------------------------------------------


class _RowwiseBatch:
    """Default ``batch``: apply ``pointwise`` to every resample row.

    A class rather than a closure so that a ``Statistic`` built from a
    picklable callable is itself picklable (process-pool bootstrap).
    """

    __slots__ = ("pointwise",)

    def __init__(self, pointwise: Callable[[np.ndarray], float]) -> None:
        self.pointwise = pointwise

    def __call__(self, matrix: np.ndarray) -> np.ndarray:
        return np.apply_along_axis(self.pointwise, 1, matrix)


class _FunctionalStateFactory:
    """Default ``make_state``: a :class:`FunctionalState` over
    ``pointwise`` (lambda-free for the same picklability reason)."""

    __slots__ = ("pointwise",)

    def __init__(self, pointwise: Callable[[np.ndarray], float]) -> None:
        self.pointwise = pointwise

    def __call__(self) -> "FunctionalState":
        return FunctionalState(self.pointwise)


class Statistic:
    """A named statistic with batch and incremental implementations.

    ``pointwise`` evaluates on one 1-D sample; ``batch`` evaluates on a
    2-D matrix whose rows are resamples (the Monte-Carlo fast path);
    ``make_state`` builds the incremental state used by delta
    maintenance.  ``row_items=True`` declares that one *item* of the
    sample is a vector row rather than a scalar (e.g. an (x, y) pair
    for ``"correlation"``) — the drivers only accept 2-D data for such
    statistics, since scalar states cannot ingest rows.
    """

    def __init__(self, name: str,
                 pointwise: Callable[[np.ndarray], float],
                 batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                 make_state: Optional[Callable[[], EstimatorState]] = None,
                 row_items: bool = False) -> None:
        self.name = name
        self.pointwise = pointwise
        self.batch = batch or _RowwiseBatch(pointwise)
        self.make_state = make_state or _FunctionalStateFactory(pointwise)
        self.row_items = row_items

    def __call__(self, sample: np.ndarray) -> float:
        return float(self.pointwise(np.asarray(sample)))

    def __reduce__(self):
        """Pickle registry statistics *by name*.

        The implementations are lambdas (unpicklable by value), but a
        registered statistic — or a ``quantile:<q>`` built by
        :func:`get_statistic` — can be reconstructed from its name on
        the far side of a process pool, which is what lets bootstrap
        work units ship a statistic to a
        :class:`~repro.exec.ProcessExecutor` worker.  By-name
        reconstruction only fires when the name provably rebuilds *this*
        statistic (registry identity, or the ``_reconstruct_by_name``
        marker set by :func:`_quantile_statistic`); ad-hoc instances —
        even ones whose name looks like ``quantile:...`` — fall back to
        default pickling and must bring picklable callables.
        """
        if _REGISTRY.get(self.name) is self \
                or getattr(self, "_reconstruct_by_name", False):
            return (get_statistic, (self.name,))
        return super().__reduce__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Statistic({self.name!r})"


def _quantile_statistic(q: float, name: str) -> Statistic:
    stat = Statistic(
        name,
        pointwise=lambda a: float(np.quantile(a, q)),
        batch=lambda m: np.quantile(m, q, axis=1),
        make_state=lambda: QuantileState(q),
    )
    # get_statistic(name) rebuilds exactly this statistic, so pickling
    # by name is sound for these instances (see Statistic.__reduce__).
    stat._reconstruct_by_name = True
    return stat


_REGISTRY: Dict[str, Statistic] = {}


def register_statistic(stat: Statistic) -> Statistic:
    """Add a statistic to the global registry (last write wins)."""
    _REGISTRY[stat.name] = stat
    return stat


register_statistic(Statistic(
    "mean", pointwise=lambda a: float(np.mean(a)),
    batch=lambda m: np.mean(m, axis=1), make_state=MeanState))
register_statistic(Statistic(
    "sum", pointwise=lambda a: float(np.sum(a)),
    batch=lambda m: np.sum(m, axis=1), make_state=SumState))
register_statistic(Statistic(
    "median", pointwise=lambda a: float(np.median(a)),
    batch=lambda m: np.median(m, axis=1), make_state=MedianState))
register_statistic(Statistic(
    "variance", pointwise=lambda a: float(np.var(a, ddof=1)),
    batch=lambda m: np.var(m, axis=1, ddof=1), make_state=VarianceState))
register_statistic(Statistic(
    "std", pointwise=lambda a: float(np.std(a, ddof=1)),
    batch=lambda m: np.std(m, axis=1, ddof=1), make_state=StdState))
register_statistic(Statistic(
    "min", pointwise=lambda a: float(np.min(a)),
    batch=lambda m: np.min(m, axis=1),
    make_state=lambda: ExtremeState("min")))
register_statistic(Statistic(
    "max", pointwise=lambda a: float(np.max(a)),
    batch=lambda m: np.max(m, axis=1),
    make_state=lambda: ExtremeState("max")))
register_statistic(Statistic(
    "proportion", pointwise=lambda a: float(np.mean(a != 0)),
    batch=lambda m: np.mean(m != 0, axis=1), make_state=ProportionState))
register_statistic(Statistic(
    "count", pointwise=lambda a: float(len(a)),
    batch=lambda m: np.full(m.shape[0], float(m.shape[1])),
    make_state=CountState))
def _pearson_pointwise(sample: np.ndarray) -> float:
    """Pearson r over an ``(n, 2)`` array whose rows are (x, y) pairs."""
    arr = np.asarray(sample, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2 or arr.shape[0] < 2:
        raise ValueError("correlation needs an (n >= 2, 2) array of pairs")
    x, y = arr[:, 0], arr[:, 1]
    sx, sy = float(x.std()), float(y.std())
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def _pearson_batch(resamples: np.ndarray) -> np.ndarray:
    """Batch form over a ``(B, n, 2)`` stack of pair resamples,
    vectorized over the resample axis."""
    arr = np.asarray(resamples, dtype=float)
    if arr.ndim != 3 or arr.shape[2] != 2 or arr.shape[1] < 2:
        raise ValueError(
            "correlation batch needs a (B, n >= 2, 2) stack of pairs")
    x, y = arr[:, :, 0], arr[:, :, 1]
    cov = np.mean((x - x.mean(axis=1, keepdims=True))
                  * (y - y.mean(axis=1, keepdims=True)), axis=1)
    denom = x.std(axis=1) * y.std(axis=1)
    out = np.zeros(arr.shape[0])
    np.divide(cov, denom, out=out, where=denom > 0.0)
    return out


# Items of a correlation sample are (x, y) ROWS, not scalars: the
# drivers treat 2-D data row-wise, resampling pairs jointly (resampling
# x and y independently would destroy the dependence being measured).
register_statistic(Statistic(
    "correlation", pointwise=_pearson_pointwise,
    batch=_pearson_batch, make_state=CorrelationState, row_items=True))
register_statistic(_quantile_statistic(0.25, "p25"))
register_statistic(_quantile_statistic(0.75, "p75"))
register_statistic(_quantile_statistic(0.90, "p90"))
register_statistic(_quantile_statistic(0.95, "p95"))
register_statistic(_quantile_statistic(0.99, "p99"))


StatisticLike = Union[str, Statistic, Callable[[np.ndarray], float]]


class _PointwiseAdapter:
    """Lambda-free wrapper for user callables.

    Being a plain class (not a closure), it pickles whenever the wrapped
    callable does — so a :class:`FunctionalState` built from a
    module-level user function can cross a process pool, which is what
    lets arbitrary statistics ride the parallel resample evaluation.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[np.ndarray], float]) -> None:
        self.fn = fn

    def __call__(self, a: np.ndarray) -> float:
        return float(self.fn(a))


def get_statistic(spec: StatisticLike) -> Statistic:
    """Resolve a name, ``Statistic`` or plain callable to a ``Statistic``.

    Names accept a ``quantile:<q>`` form (e.g. ``quantile:0.9``) besides
    the registered aliases.  Plain callables are wrapped with the
    functional (recompute) state.
    """
    if isinstance(spec, Statistic):
        return spec
    if callable(spec):
        name = getattr(spec, "__name__", "custom")
        return Statistic(name, pointwise=_PointwiseAdapter(spec))
    if isinstance(spec, str):
        if spec in _REGISTRY:
            return _REGISTRY[spec]
        if spec.startswith("quantile:"):
            q = float(spec.split(":", 1)[1])
            return _quantile_statistic(q, spec)
        raise KeyError(
            f"unknown statistic {spec!r}; known: {sorted(_REGISTRY)}")
    raise TypeError(f"cannot interpret {spec!r} as a statistic")


def available_statistics() -> List[str]:
    """Names currently registered (sorted)."""
    return sorted(_REGISTRY)
