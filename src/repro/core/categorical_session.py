"""EARL for categorical data with closed-form error (Appendix A).

For a proportion-of-successes query the error does not need the
bootstrap at all: ``p̂ = X/n`` has the known binomial variance
``p(1-p)/n`` (Appendix A), so the driver can *solve* for the sample size
that meets σ instead of searching for it.  The loop still verifies the
bound on the realized sample (the pilot's p̂ may be off for rare events)
and expands if needed — the same architecture as the numeric loop with
the AES replaced by the z-machinery of :mod:`repro.core.categorical`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.accuracy import AccuracyEstimate
from repro.core.categorical import (
    CategoricalEstimate,
    proportion_estimate,
    required_sample_size_proportion,
)
from repro.core.config import EarlConfig
from repro.core.result import EarlResult, IterationRecord
from repro.util.rng import ensure_rng


class CategoricalEarlSession:
    """Early-approximation loop for a success proportion.

    Parameters
    ----------
    data:
        The population items (any objects).
    predicate:
        Success test; defaults to truthiness (0/1 streams work as-is).
    config:
        Standard :class:`EarlConfig` (σ bounds the cv of p̂).
    """

    def __init__(self, data: Sequence, *,
                 predicate: Optional[Callable] = None,
                 config: Optional[EarlConfig] = None) -> None:
        self._data = list(data)
        if not self._data:
            raise ValueError("data cannot be empty")
        self._predicate = predicate or bool
        self._config = config or EarlConfig()

    def run(self) -> EarlResult:
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        N = len(self._data)
        order = rng.permutation(N)

        # Pilot: estimate p̂ cheaply, then solve for the required n.
        # Unlike the numeric loop, a few hundred draws pin p̂ well enough
        # to seed the closed form (the fractional pilot of §3.2 would
        # routinely exceed the whole requirement); rare events that fool
        # a small pilot are caught by the verification loop below.
        pilot_size = min(N, max(cfg.min_pilot_size, 256))
        successes = sum(
            1 for i in order[:pilot_size]
            if self._predicate(self._data[int(i)]))
        consumed = pilot_size
        # A zero-success pilot gives no basis for the closed form; fall
        # back to the Laplace-smoothed estimate.
        p_pilot = max(successes, 1) / (pilot_size + 1)
        # 25% head-room over the closed form: a boundary-sized sample
        # meets cv = σ only in expectation, so without the margin the
        # verification step would trigger an expansion every other run.
        target = min(N, max(pilot_size, math.ceil(
            1.25 * required_sample_size_proportion(p_pilot, cfg.sigma))))

        iterations: List[IterationRecord] = []
        estimate: Optional[CategoricalEstimate] = None
        for iteration in range(1, cfg.max_iterations + 1):
            successes += sum(
                1 for i in order[consumed:target]
                if self._predicate(self._data[int(i)]))
            consumed = target
            estimate = proportion_estimate(successes, consumed,
                                           confidence=cfg.confidence)
            expand = (not estimate.meets(cfg.sigma)
                      and consumed < N
                      and iteration < cfg.max_iterations)
            iterations.append(IterationRecord(
                iteration=iteration, sample_size=consumed,
                accuracy=_to_accuracy(estimate), simulated_seconds=0.0,
                expanded=expand))
            if not expand:
                break
            target = min(N, math.ceil(consumed * cfg.expansion_factor))

        assert estimate is not None
        return EarlResult(
            estimate=estimate.proportion,
            uncorrected_estimate=estimate.proportion,
            error=estimate.cv,
            achieved=estimate.meets(cfg.sigma),
            sigma=cfg.sigma,
            statistic="proportion",
            n=consumed,
            B=1,   # closed form: no resampling at all
            population_size=N,
            sample_fraction=consumed / N,
            used_fallback=consumed >= N,
            simulated_seconds=0.0,
            iterations=iterations,
            ssabe=None,
            accuracy=_to_accuracy(estimate),
        )


def _to_accuracy(est: CategoricalEstimate) -> AccuracyEstimate:
    """Adapt the z-interval estimate to the common accuracy record."""
    return AccuracyEstimate(
        estimate=est.proportion, point_estimate=est.proportion,
        error=est.cv, cv=est.cv, std=est.std, variance=est.variance,
        bias=0.0, ci_low=est.ci_low, ci_high=est.ci_high,
        n=est.n, B=1)
