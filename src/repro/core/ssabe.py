"""Sample Size And Bootstrap Estimation — SSABE (paper §3.2).

A naive driver doubles the sample (or the resample count) until the
error bound holds, which overshoots both.  SSABE instead runs a cheap
two-phase pilot **before** the real job (in local mode, §3.2) and
estimates the *minimum* ``B`` and ``n`` satisfying the user's bound σ,
"empirically minimizing B × n":

* **Phase 1 (B)** — on a small pilot sample (a fraction ``p`` of N;
  ``p = 0.01`` "gives robust results"), evaluate the statistic on
  resamples one at a time for candidate ``B ∈ {2, …, 1/τ}`` and stop when
  the error stabilizes: ``|cv_B − cv_{B-1}| < τ``.  The resulting B is
  far below the theoretical ``ε₀⁻²/2`` prescription (Fig. 8).
* **Phase 2 (n)** — split an initial sample into ``l`` nested subsamples
  of sizes ``n_i = n/2^{l-i}`` (l = 5 suffices), compute the cv of each
  with ``B`` resamples *reusing delta maintenance* between sizes, fit a
  least-squares curve through the ``(n_i, cv_i)`` points, and read off
  the ``n`` that meets σ.

If ``B × n ≥ N`` the pilot concludes that early approximation cannot
beat the exact job, and EARL falls back to a full computation (§3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.delta import MAINTENANCE_OPTIMIZED, ResampleSet
from repro.core.estimators import StatisticLike, get_statistic
from repro.util.rng import SeedLike, ensure_rng
from repro.util.stats import RunningStats
from repro.util.validation import check_fraction, check_positive, check_positive_int

#: Hard cap on phase-1 candidates, protecting against tiny τ.
DEFAULT_B_CAP = 500
#: Smallest sample size phase 2 will ever recommend.
MIN_SAMPLE_SIZE = 10


@dataclass
class SSABEResult:
    """Outcome of the two pilot phases."""

    B: int
    n: int
    fallback_to_exact: bool
    pilot_size: int
    population_size: int
    cv_by_B: List[Tuple[int, float]] = field(default_factory=list)
    cv_by_n: List[Tuple[int, float]] = field(default_factory=list)
    fit_coefficient: Optional[float] = None   # a in cv ≈ a·n^(-b)
    fit_exponent: Optional[float] = None      # b in cv ≈ a·n^(-b)

    @property
    def work_bound(self) -> int:
        """The pilot's prediction of total resampling work: B × n."""
        return self.B * self.n


def estimate_num_bootstraps(pilot: Sequence[float],
                            statistic: StatisticLike = "mean", *,
                            tau: float = 0.01,
                            B_min: int = 15,
                            stability_window: int = 3,
                            B_cap: int = DEFAULT_B_CAP,
                            seed: SeedLike = None
                            ) -> Tuple[int, List[Tuple[int, float]]]:
    """Phase 1: smallest ``B`` whose cv has stabilized to within ``τ``.

    Returns ``(B, [(candidate, cv), ...])``.  Candidates range over
    ``{2, …, min(1/τ, B_cap)}``; the paper stops at the first
    ``|cv_B − cv_{B-1}| < τ``, which on noisy curves fires far too early
    (a single small step is not stability), so we harden the rule the
    obvious way: the last ``stability_window`` consecutive steps must all
    be below τ and ``B`` must be at least ``B_min``.  If the curve never
    stabilizes the largest candidate is returned (with the full
    diagnostic trace).
    """
    check_fraction("tau", tau, inclusive_high=True)
    check_positive_int("B_min", B_min)
    check_positive_int("stability_window", stability_window)
    if B_min < 2:
        raise ValueError("B_min must be at least 2 (cv needs two resamples)")
    stat = get_statistic(statistic)
    data = np.asarray(pilot, dtype=float)
    if len(data) == 0:
        raise ValueError("pilot sample cannot be empty")
    rng = ensure_rng(seed)
    B_max = min(max(B_min + stability_window, math.ceil(1.0 / tau)), B_cap)

    n = len(data)  # rows are items for 2-D pilots (e.g. (x, y) pairs)
    running = RunningStats()
    curve: List[Tuple[int, float]] = []
    prev_cv: Optional[float] = None
    below_tau_streak = 0
    chosen: Optional[int] = None
    for b in range(1, B_max + 1):
        idx = rng.integers(0, n, size=n)
        running.add(stat(data[idx]))
        if b < 2:
            continue
        cv = running.cv()
        curve.append((b, cv))
        if prev_cv is not None:
            below_tau_streak = (below_tau_streak + 1
                                if abs(cv - prev_cv) < tau else 0)
            if b >= B_min and below_tau_streak >= stability_window:
                chosen = b
                break
        prev_cv = cv
    return chosen if chosen is not None else B_max, curve


def estimate_sample_size(pilot: Sequence[float],
                         statistic: StatisticLike = "mean", *,
                         sigma: float = 0.05,
                         B: int = 30,
                         levels: int = 5,
                         maintenance: str = MAINTENANCE_OPTIMIZED,
                         seed: SeedLike = None
                         ) -> Tuple[int, List[Tuple[int, float]],
                                    Optional[float], Optional[float]]:
    """Phase 2: least-squares extrapolation of the cv-vs-n curve.

    The pilot is split into ``levels`` nested subsamples (sizes
    ``n/2^(l-i)``); each size's cv is computed with ``B`` resamples, and
    growing from one size to the next goes through the delta-maintained
    resample set rather than fresh bootstraps (§3.2).  The ``(n_i, cv_i)``
    points are fitted with ``cv = a·n^(-b)`` (linear least squares in
    log-log space) and the fitted curve is solved for ``cv(n*) = σ``.

    Returns ``(n*, points, a, b)``.
    """
    check_fraction("sigma", sigma, inclusive_high=True)
    check_positive_int("B", B)
    check_positive_int("levels", levels)
    data = np.asarray(pilot, dtype=float)
    if len(data) < 2 ** levels:
        raise ValueError(
            f"pilot of size {len(data)} too small for {levels} halvings")
    rng = ensure_rng(seed)
    shuffled = data[rng.permutation(len(data))]

    sizes = [len(data) // (2 ** (levels - i)) for i in range(1, levels + 1)]
    sizes = sorted(set(max(2, s) for s in sizes))
    resamples = ResampleSet(statistic, B, maintenance=maintenance, seed=rng)
    points: List[Tuple[int, float]] = []
    consumed = 0
    for size in sizes:
        delta = shuffled[consumed:size]
        consumed = size
        if resamples.sample_size == 0:
            resamples.initialize(delta)
        else:
            resamples.expand(delta)
        estimates = resamples.estimates()
        mean = float(np.mean(estimates))
        std = float(np.std(estimates, ddof=1))
        cv = math.inf if mean == 0 and std > 0 else (
            0.0 if std == 0 else std / abs(mean))
        points.append((size, cv))

    n_star, a, b = _fit_and_solve(points, sigma)
    return n_star, points, a, b


def _fit_and_solve(points: Sequence[Tuple[int, float]], sigma: float
                   ) -> Tuple[int, Optional[float], Optional[float]]:
    """Fit ``cv = a·n^(-b)`` and solve for σ; robust fallbacks included."""
    usable = [(n, cv) for n, cv in points if cv > 0 and math.isfinite(cv)]
    largest_n, largest_cv = points[-1]
    if largest_cv <= sigma:
        # The largest pilot subsample already satisfies the bound; take
        # the smallest size on record that does.
        for n, cv in usable or points:
            if cv <= sigma:
                return max(MIN_SAMPLE_SIZE, n), None, None
        return max(MIN_SAMPLE_SIZE, largest_n), None, None
    if len(usable) >= 2:
        log_n = np.log([n for n, _ in usable])
        log_cv = np.log([cv for _, cv in usable])
        slope, intercept = np.polyfit(log_n, log_cv, 1)
        b = -float(slope)
        a = float(math.exp(intercept))
        if b > 0.05:  # a meaningful downward trend
            n_star = math.ceil((a / sigma) ** (1.0 / b))
            return max(MIN_SAMPLE_SIZE, n_star), a, b
    # Degenerate fit: fall back to the canonical 1/√n scaling from the
    # largest measured point.
    if largest_cv > 0 and math.isfinite(largest_cv):
        n_star = math.ceil(largest_n * (largest_cv / sigma) ** 2)
        return max(MIN_SAMPLE_SIZE, n_star), None, 0.5
    return max(MIN_SAMPLE_SIZE, largest_n), None, None


def estimate_parameters(pilot: Sequence[float], population_size: int,
                        statistic: StatisticLike = "mean", *,
                        sigma: float = 0.05,
                        tau: float = 0.01,
                        levels: int = 5,
                        B_min: int = 15,
                        stability_window: int = 3,
                        maintenance: str = MAINTENANCE_OPTIMIZED,
                        seed: SeedLike = None) -> SSABEResult:
    """Run both SSABE phases and apply the ``B × n ≥ N`` fallback rule."""
    check_positive_int("population_size", population_size)
    rng = ensure_rng(seed)
    data = np.asarray(pilot, dtype=float)
    B, cv_by_B = estimate_num_bootstraps(
        data, statistic, tau=tau, B_min=B_min,
        stability_window=stability_window, seed=rng)
    n, cv_by_n, a, b = estimate_sample_size(
        data, statistic, sigma=sigma, B=B, levels=levels,
        maintenance=maintenance, seed=rng)
    n = min(n, population_size)
    fallback = B * n >= population_size
    return SSABEResult(B=B, n=n, fallback_to_exact=fallback,
                       pilot_size=int(len(data)),
                       population_size=population_size,
                       cv_by_B=cv_by_B, cv_by_n=cv_by_n,
                       fit_coefficient=a, fit_exponent=b)


# ---------------------------------------------------------------------------
# Theoretical predictions (the comparison side of Fig. 8)
# ---------------------------------------------------------------------------


def theoretical_sample_size_mean(population_cv: float, sigma: float) -> int:
    """CLT prescription for the sample mean: ``n = (cv_pop / σ)²``.

    The cv of the sample mean is ``cv_pop/√n``; solving for σ gives the
    closed form.  Fig. 8 shows it over-estimates at tight bounds and
    under-estimates at loose ones relative to SSABE's empirical pick.
    """
    check_positive("population_cv", population_cv)
    check_fraction("sigma", sigma, inclusive_high=True)
    return math.ceil((population_cv / sigma) ** 2)
