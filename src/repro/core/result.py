"""Result objects returned by the EARL drivers.

Two granularities: :class:`EarlResult` is the batch outcome of a whole
run, while :class:`ProgressSnapshot` is the progressively-refined answer
the streaming engines (``EarlSession.stream()`` / ``EarlJob.stream()``)
yield after every accuracy-estimation stage.  The final snapshot of a
stream carries the run's :class:`EarlResult`, field-for-field identical
to what ``run()`` returns for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.accuracy import AccuracyEstimate
from repro.core.ssabe import SSABEResult


@dataclass(frozen=True)
class IterationRecord:
    """One pass of the sample-expand-estimate loop."""

    iteration: int
    sample_size: int
    accuracy: AccuracyEstimate
    simulated_seconds: float
    expanded: bool  # whether this iteration triggered a further expansion


@dataclass(frozen=True)
class ProgressSnapshot:
    """One progressively-refined answer from a streaming EARL run.

    The streaming engines yield a snapshot after every accuracy
    estimation stage — one per expansion-loop iteration, with the last
    one marked ``final`` and carrying the complete :class:`EarlResult`.
    The §3.1 exact-fallback path emits a single final snapshot with
    ``iteration == 0`` (no expansion loop ran).

    ``estimate`` is already corrected for the sample fraction ``p``
    available *at this iteration*, so a consumer can act on any snapshot
    as if the run had terminated there.  ``cost_delta_seconds`` is the
    simulated time this iteration charged to the cost ledger (always
    0.0 for the in-memory :class:`EarlSession`, which simulates no
    cluster); ``cost_total_seconds`` accumulates the whole run so far
    including probe and pilot costs — on consumer-driven early stop the
    ledger therefore shows only the iterations that actually completed.
    """

    iteration: int            # 1-based loop iteration; 0 = exact fallback
    estimate: float           # corrected estimate as of this iteration
    uncorrected_estimate: float
    error: float              # selected error metric (default cv)
    cv: float
    ci_low: float
    ci_high: float
    sample_size: int
    population_size: int
    sample_fraction: float
    achieved: bool            # error <= sigma at this point
    final: bool               # last snapshot of the stream
    statistic: str
    cost_delta_seconds: float
    cost_total_seconds: float
    accuracy: Optional[AccuracyEstimate] = None
    result: Optional["EarlResult"] = None  # populated when final
    #: §3.4 degraded-mode accounting: set once sample rows were lost to
    #: failures and the engine re-planned around the survivors.
    degraded: bool = False
    lost_fraction: float = 0.0

    @property
    def ci(self) -> tuple:
        """The bootstrap confidence interval ``(ci_low, ci_high)``."""
        return (self.ci_low, self.ci_high)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view of this snapshot (the service wire form).

        Plain Python scalars only — numpy floats/ints are cast — and a
        stable key set, so that two byte-identical engine runs serialize
        to byte-identical canonical JSON.  The nested ``accuracy`` /
        ``result`` objects are intentionally excluded: a snapshot event
        must stay bounded, and every field a progressive consumer acts
        on is already flattened here.
        """
        return {
            "iteration": int(self.iteration),
            "estimate": float(self.estimate),
            "uncorrected_estimate": float(self.uncorrected_estimate),
            "error": float(self.error),
            "cv": float(self.cv),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "sample_size": int(self.sample_size),
            "population_size": int(self.population_size),
            "sample_fraction": float(self.sample_fraction),
            "achieved": bool(self.achieved),
            "final": bool(self.final),
            "statistic": str(self.statistic),
            "cost_delta_seconds": float(self.cost_delta_seconds),
            "cost_total_seconds": float(self.cost_total_seconds),
            "degraded": bool(self.degraded),
            "lost_fraction": float(self.lost_fraction),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "final" if self.final else "partial"
        return (f"ProgressSnapshot(iter={self.iteration} [{flag}], "
                f"{self.statistic}={self.estimate:.6g}, "
                f"error={self.error:.4f}, n={self.sample_size}/"
                f"{self.population_size}, "
                f"t+={self.cost_delta_seconds:.2f}s)")


@dataclass
class EarlResult:
    """Outcome of an EARL run.

    ``estimate`` is the corrected early result; ``achieved`` says whether
    the error bound σ was met (when the loop exhausts its iteration or
    data budget the best effort is returned with ``achieved=False``).
    ``used_fallback`` marks the §3.1 path where SSABE predicted that
    early approximation cannot beat the exact computation, which was then
    performed instead.
    """

    estimate: float
    uncorrected_estimate: float
    error: float
    achieved: bool
    sigma: float
    statistic: str
    n: int
    B: int
    population_size: int
    sample_fraction: float
    used_fallback: bool
    simulated_seconds: float
    iterations: List[IterationRecord] = field(default_factory=list)
    ssabe: Optional[SSABEResult] = None
    accuracy: Optional[AccuracyEstimate] = None
    input_fraction: float = 1.0   # <1.0 when node failures lost data (§3.4)
    #: Per-key corrected estimates for grouped (multi-reducer) jobs.
    key_estimates: Optional[Dict[Any, float]] = None
    #: Dependence length used by the block-bootstrap driver (App. A).
    block_length: Optional[int] = None
    #: §3.4 degraded-mode accounting: sample rows lost to failures were
    #: dropped and the bootstrap re-estimated from the survivors.
    degraded: bool = False
    lost_fraction: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def ci(self) -> Optional[tuple]:
        if self.accuracy is None:
            return None
        return (self.accuracy.ci_low, self.accuracy.ci_high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "exact-fallback" if self.used_fallback else (
            "met" if self.achieved else "NOT met")
        return (f"EarlResult({self.statistic}={self.estimate:.6g}, "
                f"error={self.error:.4f} [{flag}], n={self.n}/"
                f"{self.population_size}, B={self.B}, "
                f"iters={self.num_iterations}, "
                f"t={self.simulated_seconds:.2f}s)")
