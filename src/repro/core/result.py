"""Result objects returned by the EARL drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.accuracy import AccuracyEstimate
from repro.core.ssabe import SSABEResult


@dataclass(frozen=True)
class IterationRecord:
    """One pass of the sample-expand-estimate loop."""

    iteration: int
    sample_size: int
    accuracy: AccuracyEstimate
    simulated_seconds: float
    expanded: bool  # whether this iteration triggered a further expansion


@dataclass
class EarlResult:
    """Outcome of an EARL run.

    ``estimate`` is the corrected early result; ``achieved`` says whether
    the error bound σ was met (when the loop exhausts its iteration or
    data budget the best effort is returned with ``achieved=False``).
    ``used_fallback`` marks the §3.1 path where SSABE predicted that
    early approximation cannot beat the exact computation, which was then
    performed instead.
    """

    estimate: float
    uncorrected_estimate: float
    error: float
    achieved: bool
    sigma: float
    statistic: str
    n: int
    B: int
    population_size: int
    sample_fraction: float
    used_fallback: bool
    simulated_seconds: float
    iterations: List[IterationRecord] = field(default_factory=list)
    ssabe: Optional[SSABEResult] = None
    accuracy: Optional[AccuracyEstimate] = None
    input_fraction: float = 1.0   # <1.0 when node failures lost data (§3.4)
    #: Per-key corrected estimates for grouped (multi-reducer) jobs.
    key_estimates: Optional[Dict[Any, float]] = None
    #: Dependence length used by the block-bootstrap driver (App. A).
    block_length: Optional[int] = None

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def ci(self) -> Optional[tuple]:
        if self.accuracy is None:
            return None
        return (self.accuracy.ci_low, self.accuracy.ci_high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "exact-fallback" if self.used_fallback else (
            "met" if self.achieved else "NOT met")
        return (f"EarlResult({self.statistic}={self.estimate:.6g}, "
                f"error={self.error:.4f} [{flag}], n={self.n}/"
                f"{self.population_size}, B={self.B}, "
                f"iters={self.num_iterations}, "
                f"t={self.simulated_seconds:.2f}s)")
