"""Grouped EARL sessions: per-group early answers with per-group bounds.

Grouped aggregation is where uniform sampling breaks down: a key holding
1 % of the table receives 1 % of every uniform sample, so its bootstrap
error converges two orders of magnitude slower than the head key's and
the *query* terminates only when its worst group does.
:class:`GroupedEarlSession` runs the paper's loop **per group** over a
stratified design instead (:class:`~repro.sampling.StratifiedSampler`):

* every group gets its own SSABE pilot (a prefix of the group's own
  permutation), its own ``(B, n)``, and its own delta-maintained
  :class:`~repro.core.accuracy.AccuracyEstimationStage`;
* a group stops sampling the moment *its* error bound is met (or its
  rows are exhausted / its §3.1 exact fallback fires), while laggard
  groups keep expanding — the per-group counterpart of the paper's
  termination protocol;
* the per-round stage offers of all still-active ``(group, aggregate)``
  pairs are independent work units and fan out through the PR-1
  executor seam with the PR-3 broadcast-once data plane (one
  stratified-ordered column shipped per measure per session), so
  serial / thread / process backends yield byte-identical snapshots.

Determinism contract: each group draws an integer seed from the session
RNG (exposed as :attr:`GroupedEarlSession.group_seeds`), and a
**single-measure** session runs each group exactly as
``EarlSession(group_rows, stat, config=replace(cfg, seed=seed))`` would
— same permutation, same SSABE stream, same stage RNG, same expansion
schedule — so the per-group estimate, CI and iteration trail are
byte-identical to an independent solo session on that group's rows
(``tests/query/test_equivalence.py`` pins this).  Multi-measure
sessions share each group's sample and give every measure its own
spawned streams, SessionManager-style.

Budgeted allocation: by default (``allocation="schedule"``) every group
follows its own expansion schedule.  With one of the
:data:`~repro.sampling.stratified.ALLOCATIONS` policies the round's
total budget (``round_budget`` or the sum of scheduled deltas) is
instead split across the still-active groups — uniform ("senate"),
proportional, or Neyman ``N_h * S_h`` using each group's pilot std — so
finished groups automatically donate their budget to the laggards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.accuracy import AccuracyEstimate, AccuracyEstimationStage
from repro.core.checkpoint import checkpoint_doc, loss_event, replay_stream
from repro.core.config import EarlConfig
from repro.core.correction import CorrectionLike, get_correction
from repro.core.earl import (
    check_row_compatibility,
    exact_fallback_result,
    make_estimation_stage,
    pilot_size_for,
)
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.result import EarlResult, IterationRecord
from repro.core.ssabe import SSABEResult, estimate_parameters
from repro.exec.executor import BroadcastHandle, Executor, resolve_executor
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.sampling.stratified import ALLOCATIONS, StratifiedSampler
from repro.util.rng import ensure_rng, spawn_child

#: Default allocation mode: every group follows its own expansion
#: schedule (the mode with the solo-session equivalence guarantee).
ALLOCATION_SCHEDULE = "schedule"


@dataclass(frozen=True, eq=False)
class Measure:
    """One aggregate to estimate per group.

    ``values`` is the measure's column, aligned row-for-row with the
    session's ``keys`` (1-D numeric, or 2-D rows for row-item statistics
    such as ``"correlation"``).  ``sigma`` overrides the config's error
    bound for this measure only; ``name`` keys the per-group results.
    """

    name: str
    statistic: StatisticLike
    values: Any
    sigma: Optional[float] = None
    correction: CorrectionLike = "auto"


@dataclass(frozen=True)
class GroupEstimate:
    """Progressive answer for one ``(group, aggregate)`` pair."""

    key: Hashable
    aggregate: str
    statistic: str
    estimate: float           # corrected for the group's sample fraction
    uncorrected_estimate: float
    error: float
    cv: float
    ci_low: float
    ci_high: float
    sample_size: int          # group rows consumed so far
    group_size: int           # the group's population N_g
    sample_fraction: float
    achieved: bool            # error <= the measure's sigma
    done: bool                # this pair stopped (met / exhausted / exact)
    used_fallback: bool = False
    accuracy: Optional[AccuracyEstimate] = None
    result: Optional[EarlResult] = None   # populated once done
    #: §3.4 degraded-mode accounting: the group lost sample rows to a
    #: failure and its bootstrap was re-estimated from the survivors.
    degraded: bool = False
    lost_fraction: float = 0.0

    @property
    def ci(self) -> tuple:
        return (self.ci_low, self.ci_high)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the service wire form): plain scalars,
        stable keys, nested ``accuracy``/``result`` objects excluded —
        mirrors :meth:`repro.core.result.ProgressSnapshot.to_dict`."""
        return {
            "key": str(self.key),
            "aggregate": str(self.aggregate),
            "statistic": str(self.statistic),
            "estimate": float(self.estimate),
            "uncorrected_estimate": float(self.uncorrected_estimate),
            "error": float(self.error),
            "cv": float(self.cv),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "sample_size": int(self.sample_size),
            "group_size": int(self.group_size),
            "sample_fraction": float(self.sample_fraction),
            "achieved": bool(self.achieved),
            "done": bool(self.done),
            "used_fallback": bool(self.used_fallback),
            "degraded": bool(self.degraded),
            "lost_fraction": float(self.lost_fraction),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return (f"GroupEstimate({self.key!r}.{self.aggregate}="
                f"{self.estimate:.6g}, error={self.error:.4f} [{state}], "
                f"n={self.sample_size}/{self.group_size})")


@dataclass
class GroupedResult:
    """Outcome of a grouped run: one :class:`EarlResult` per
    ``(group, aggregate)`` pair, plus whole-query accounting."""

    groups: Dict[Hashable, Dict[str, EarlResult]]
    rounds: int
    rows_processed: int
    population_size: int
    #: §3.4 degraded-mode accounting (sample rows lost to failures).
    degraded: bool = False
    lost_fraction: float = 0.0

    @property
    def achieved(self) -> bool:
        """Whether every group met every aggregate's error bound."""
        return all(res.achieved
                   for by_agg in self.groups.values()
                   for res in by_agg.values())

    def group(self, key: Hashable) -> Dict[str, EarlResult]:
        return self.groups[key]

    def estimates(self, aggregate: Optional[str] = None
                  ) -> Dict[Hashable, float]:
        """``{group: estimate}`` for one aggregate (the only one when
        the query selected a single aggregate)."""
        out: Dict[Hashable, float] = {}
        for key, by_agg in self.groups.items():
            if aggregate is None:
                if len(by_agg) != 1:
                    raise ValueError(
                        "aggregate name required: query selected "
                        f"{sorted(by_agg)}")
                out[key] = next(iter(by_agg.values())).estimate
            else:
                out[key] = by_agg[aggregate].estimate
        return out

    def to_rows(self) -> List[Dict[str, Any]]:
        """Flat result-set rows (one per group) for printing."""
        rows = []
        for key, by_agg in self.groups.items():
            row: Dict[str, Any] = {"group": key}
            for name, res in by_agg.items():
                row[name] = res.estimate
                row[f"{name}.error"] = res.error
                row[f"{name}.n"] = res.n
            rows.append(row)
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "met" if self.achieved else "NOT met"
        return (f"GroupedResult({len(self.groups)} group(s), "
                f"rounds={self.rounds}, rows={self.rows_processed}/"
                f"{self.population_size}, bounds {flag})")


@dataclass(frozen=True)
class GroupedSnapshot:
    """One round's progressively-refined grouped answer.

    ``groups`` is the *cumulative* latest :class:`GroupEstimate` per
    ``(group, aggregate)`` — finished pairs keep their terminal entry —
    and ``updated`` names the pairs refreshed this round.  The last
    snapshot has ``final=True`` and carries the :class:`GroupedResult`,
    which makes the stream consumable by the existing
    :class:`~repro.streaming.StreamConsumer` machinery unchanged.
    """

    round: int
    groups: Dict[Hashable, Dict[str, GroupEstimate]]
    updated: Tuple[Tuple[Hashable, str], ...]
    rows_processed: int
    population_size: int
    active_groups: int
    final: bool
    result: Optional[GroupedResult] = None
    #: §3.4 degraded-mode accounting: whether any group lost sample
    #: rows, and the fraction of the materialized sample lost overall.
    degraded: bool = False
    lost_fraction: float = 0.0

    @property
    def worst(self) -> Optional[GroupEstimate]:
        """The unfinished pair with the largest error (the laggard the
        next round will keep sampling), if any."""
        running = [e for by_agg in self.groups.values()
                   for e in by_agg.values() if not e.done]
        if not running:
            return None
        return max(running, key=lambda e: e.error)

    def to_dict(self, *, updated_only: bool = False) -> Dict[str, Any]:
        """JSON-serializable view of this round (the service wire form).

        Group keys are stringified to stay JSON-object keys.  With
        ``updated_only`` the ``groups`` payload carries just the pairs
        refreshed this round — the bounded per-round delta a resumable
        event stream wants, since the cumulative board is reconstructible
        from the deltas (and the final snapshot ships the full board).
        """
        wanted = set(self.updated) if updated_only else None
        groups: Dict[str, Dict[str, Any]] = {}
        for key, by_agg in self.groups.items():
            for name, entry in by_agg.items():
                if wanted is not None and (key, name) not in wanted:
                    continue
                groups.setdefault(str(key), {})[str(name)] = entry.to_dict()
        return {
            "round": int(self.round),
            "groups": groups,
            "updated": [[str(key), str(name)] for key, name in self.updated],
            "rows_processed": int(self.rows_processed),
            "population_size": int(self.population_size),
            "active_groups": int(self.active_groups),
            "final": bool(self.final),
            "achieved": (bool(self.result.achieved)
                         if self.result is not None else None),
            "degraded": bool(self.degraded),
            "lost_fraction": float(self.lost_fraction),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "final" if self.final else "partial"
        return (f"GroupedSnapshot(round={self.round} [{flag}], "
                f"{len(self.groups)} group(s), active={self.active_groups}, "
                f"rows={self.rows_processed}/{self.population_size})")


# ---------------------------------------------------------------------------
# executor fan-out units (module level so process pools pickle them
# by reference; mirrors repro.streaming.session, which sits above this
# layer and therefore cannot be imported from here)
# ---------------------------------------------------------------------------


def _offer_shared(args: Tuple[AccuracyEstimationStage, BroadcastHandle,
                              int, int]) -> AccuracyEstimate:
    """Shared-memory fan-out unit: mutate the stage in place; the delta
    is a ``[lo, hi)`` slice of the measure's broadcast column."""
    stage, shared, lo, hi = args
    return stage.offer(shared.value[lo:hi])


def _offer_owned(args: Tuple[AccuracyEstimationStage, BroadcastHandle,
                             int, int]
                 ) -> Tuple[AccuracyEstimationStage, AccuracyEstimate]:
    """Process-pool fan-out unit: ship the mutated stage back for the
    driver to rebind; the column itself rode the session's one
    broadcast, never the per-round task."""
    stage, shared, lo, hi = args
    estimate = stage.offer(shared.value[lo:hi])
    return stage, estimate


class _LocalColumn:
    """Stand-in for a :class:`BroadcastHandle` over a degraded group's
    surviving rows.

    After a §3.4 sample loss the group's working column is a compacted
    per-group local array, not a slice of the session broadcast; this
    wrapper exposes the same ``.value`` the fan-out units read, so the
    degraded path reuses them unchanged (on process pools it ships by
    value per round — the pre-broadcast cost, paid only after a fault).
    """

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray) -> None:
        self.value = value


# ---------------------------------------------------------------------------
# internal per-group / per-measure state
# ---------------------------------------------------------------------------


class _MeasureState:
    """One (group, measure) estimation pipeline."""

    __slots__ = ("measure", "index", "statistic", "sigma", "correction",
                 "stage", "B", "n", "ssabe", "iterations", "estimate",
                 "result", "used_fallback", "seg_start", "permuted",
                 "dead")

    def __init__(self, measure: Measure, index: int, statistic,
                 sigma: float, correction) -> None:
        self.measure = measure
        self.index = index          # position in the session's measure list
        self.statistic = statistic
        self.sigma = sigma
        self.correction = correction
        self.stage: Optional[AccuracyEstimationStage] = None
        self.B: Optional[int] = None
        self.n: Optional[int] = None
        self.ssabe: Optional[SSABEResult] = None
        self.iterations: List[IterationRecord] = []
        self.estimate: Optional[AccuracyEstimate] = None
        self.result: Optional[EarlResult] = None
        self.used_fallback = False
        self.seg_start = 0    # offset of the group's segment in the
        #                       measure's broadcast column
        #: The group's permuted column, held from set-up until the
        #: broadcast concatenation consumes it (then dropped).
        self.permuted: Optional[np.ndarray] = None
        #: §3.4: the stratum died (every sample row lost) before this
        #: measure ever produced an estimate — withdrawn, no result.
        self.dead = False

    @property
    def done(self) -> bool:
        return self.result is not None or self.dead


class _GroupState:
    """One group's sampling schedule plus its measure pipelines."""

    __slots__ = ("key", "size", "seed", "rows", "measures", "consumed",
                 "target", "iteration", "pilot_std", "bound", "lost",
                 "degraded", "local")

    def __init__(self, key: Hashable, size: int, seed: int,
                 rows: np.ndarray) -> None:
        self.key = key
        self.size = size
        self.seed = seed
        self.rows = rows            # table-row indices, appearance order
        self.measures: List[_MeasureState] = []
        self.consumed = 0
        self.target = 0
        self.iteration = 0
        self.pilot_std = 0.0
        self.bound = 0      # broadcast-segment length (rows reachable)
        # §3.4 degraded-mode state: sample rows lost to failures, and
        # the per-measure compacted survivor columns replacing the
        # broadcast segments once a loss hits this group.
        self.lost = 0
        self.degraded = False
        self.local: Optional[List[Optional[_LocalColumn]]] = None

    @property
    def lost_fraction(self) -> float:
        """Fraction of the group's materialized sample lost so far."""
        total = self.lost + self.bound
        return self.lost / total if total else 0.0

    @property
    def active_measures(self) -> List[_MeasureState]:
        return [m for m in self.measures if not m.done]

    @property
    def active(self) -> bool:
        return bool(self.active_measures)


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------


class GroupedEarlSession:
    """Approximate grouped aggregation with per-group error bounds.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core.grouped import GroupedEarlSession, Measure
    >>> from repro.core import EarlConfig
    >>> rng = np.random.default_rng(0)
    >>> keys = rng.choice(["a", "b"], size=50_000, p=[0.9, 0.1])
    >>> vals = rng.lognormal(3.0, 1.0, 50_000)
    >>> session = GroupedEarlSession(
    ...     keys, [Measure("mean(value)", "mean", vals)],
    ...     config=EarlConfig(sigma=0.05, seed=1))
    >>> result = session.run()
    >>> sorted(result.groups) == ["a", "b"] and result.achieved
    True

    A session streams **once** (iterate :meth:`stream`, or call
    :meth:`run`, which drains it); closing the stream cancels the
    still-active groups and tears the executor down.
    """

    def __init__(self, keys: Sequence[Hashable],
                 measures: Sequence[Measure], *,
                 config: Optional[EarlConfig] = None,
                 allocation: str = ALLOCATION_SCHEDULE,
                 round_budget: Optional[int] = None) -> None:
        if len(keys) == 0:
            raise ValueError("keys must be non-empty")
        if not measures:
            raise ValueError("at least one measure is required")
        if allocation != ALLOCATION_SCHEDULE \
                and allocation not in ALLOCATIONS:
            raise ValueError(
                f"unknown allocation {allocation!r}; known: "
                f"{[ALLOCATION_SCHEDULE, *ALLOCATIONS]}")
        if round_budget is not None and round_budget < 1:
            raise ValueError("round_budget must be positive")
        if round_budget is not None and allocation == ALLOCATION_SCHEDULE:
            raise ValueError(
                "round_budget needs a quota allocation policy; "
                f"pick one of {list(ALLOCATIONS)}")
        self._keys = keys if isinstance(keys, np.ndarray) \
            else np.asarray(keys, dtype=object)
        self._config = config or EarlConfig()
        self._allocation = allocation
        self._round_budget = round_budget
        N = len(self._keys)
        seen = set()
        self._measures: List[Measure] = []
        self._columns: List[np.ndarray] = []
        for measure in measures:
            if measure.name in seen:
                raise ValueError(f"duplicate measure name {measure.name!r}")
            seen.add(measure.name)
            column = np.asarray(measure.values, dtype=float)
            if column.ndim not in (1, 2) or len(column) != N:
                raise ValueError(
                    f"measure {measure.name!r} values must align with the "
                    f"{N} keys (got shape {column.shape})")
            check_row_compatibility(get_statistic(measure.statistic), column)
            self._measures.append(measure)
            self._columns.append(column)
        self._started = False
        self._cancelled = False
        self._group_seeds: Dict[Hashable, int] = {}
        # Cross-query scheduler hooks: a one-round per-group quota
        # override, and the group states exposed for live demands.
        self._quota_override: Optional[Dict[Hashable, int]] = None
        self._externally_budgeted = False
        self._groups: List[_GroupState] = []
        # §3.4 degraded-mode state: pending loss reports (applied at
        # the next round boundary) and a lazily-spawned loss stream.
        self._pending_loss: List[Tuple[float, Optional[set],
                                       Optional[Any]]] = []
        # Checkpoint provenance: snapshots yielded so far and the loss
        # events already applied, each pinned to its round boundary.
        self._stream_emitted = 0
        self._applied_losses: List[Dict[str, Any]] = []
        self._rng: Optional[np.random.Generator] = None
        self._loss_rng: Optional[np.random.Generator] = None

    @property
    def config(self) -> EarlConfig:
        return self._config

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was requested."""
        return self._cancelled

    def cancel(self) -> None:
        """Request cancellation of the run at the next round boundary.

        Safe to call from any thread while another thread drives
        :meth:`stream` (a plain flag, checked between rounds): the
        stream ends without a final snapshot and its teardown closes
        the executor.  Generators must only be ``close()``d from the
        thread iterating them, so this flag is the cross-thread
        cancellation path — the service layer's cancel/expire uses it,
        then the driving thread itself closes the generator.
        """
        self._cancelled = True

    @property
    def degraded(self) -> bool:
        """Whether any group lost sample rows to a reported failure."""
        return any(g.degraded for g in self._groups)

    def report_loss(self, fraction: float, *,
                    keys: Optional[Sequence[Hashable]] = None,
                    seed: Optional[Any] = None) -> None:
        """Report that roughly ``fraction`` of the sampled rows were
        lost to a failure (§3.4 degrade-don't-die).

        Applied at the next round boundary: each affected group's
        in-memory sample rows independently survive with probability
        ``1 - fraction``, its bootstrap stages are rebuilt from the
        survivors (bounds widen accordingly), and the stratified quota
        planning continues around what remains.  ``keys`` restricts the
        loss to specific strata (default: every group — a whole-node
        loss); ``fraction == 1.0`` kills the listed strata outright —
        a dead stratum finalizes with its best-so-far estimate, or is
        withdrawn from the results if it never produced one.  Finished
        groups keep their results.  Safe to call from any thread while
        another drives :meth:`stream`; ``seed`` pins the loss pattern.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"loss fraction must be in (0, 1], got {fraction}")
        key_set = None if keys is None else set(keys)
        self._pending_loss.append((float(fraction), key_set, seed))
        if _METRICS.enabled:
            _METRICS.counter("repro_loss_reports_total",
                             labels={"engine": "grouped"},
                             help="§3.4 sample-loss reports").inc()

    @property
    def group_seeds(self) -> Dict[Hashable, int]:
        """Integer seed drawn per group (populated once streaming
        starts).  A single-measure group is byte-identical to
        ``EarlSession(group_rows, stat, config=replace(cfg,
        seed=group_seeds[key]))``."""
        return dict(self._group_seeds)

    # ------------------------------------------------- scheduler hooks
    def set_round_budget(self, total: int) -> None:
        """Re-target the per-round budget between rounds (budgeted
        allocations only) — the coarse global-allocation hook."""
        if self._allocation == ALLOCATION_SCHEDULE:
            raise RuntimeError(
                "round budget needs a quota allocation policy; "
                f"pick one of {list(ALLOCATIONS)}")
        if total < 1:
            raise ValueError("round_budget must be positive")
        self._round_budget = total

    def set_round_quotas(self, quotas: Dict[Hashable, int]) -> None:
        """One-round per-group quota override, consumed by the next
        round — the cross-query scheduler's injection point.

        The next round samples ``quotas[key]`` rows from each listed
        group (capped at the group's broadcast segment; groups not
        listed draw nothing) instead of the session's own allocation.
        Injected quotas can trickle rows, so the round-count safety
        bound rises the way budgeted allocation's does; per-group
        iteration counts still cap at ``max_iterations``, so a
        scheduler that slices a group too thin forfeits rounds the
        schedule would have used.
        """
        self._quota_override = {key: int(quota)
                                for key, quota in quotas.items()}
        self._externally_budgeted = True

    def live_demands(self) -> List[Dict[str, Any]]:
        """Per-active-group demand records for an external budget
        allocator (empty before streaming starts).

        ``scale`` is the live Neyman weight ingredient: once a group
        has bootstrap estimates, its worst measure's ``error·√n``
        re-estimates ``S_h`` from the live resample sets (``error ∝
        S/√n``); before the first round the pilot std stands in.
        ``sigma``/``error`` describe the binding (worst error-to-bound
        ratio) measure; ``scheduled`` is what the group's own schedule
        would draw next, ``remaining`` the most any round can still
        reach (broadcast segment minus consumed).
        """
        records: List[Dict[str, Any]] = []
        for group in self._groups:
            measures = group.active_measures
            if not measures:
                continue
            binding = None
            ratio = -math.inf
            for mstate in measures:
                estimate = mstate.estimate
                error = (float(estimate.error) if estimate is not None
                         else math.inf)
                if error / max(mstate.sigma, 1e-12) > ratio:
                    ratio = error / max(mstate.sigma, 1e-12)
                    binding = (mstate, error)
            mstate, error = binding
            if math.isfinite(error) and group.consumed > 0:
                scale = error * math.sqrt(group.consumed)
            else:
                scale = float(group.pilot_std)
            bound = group.bound or group.size
            records.append({
                "key": group.key, "error": error, "sigma": mstate.sigma,
                "consumed": group.consumed, "size": group.size,
                "scheduled": max(group.target - group.consumed, 0),
                "remaining": max(bound - group.consumed, 0),
                "scale": scale, "shared": False,
            })
        return records

    def run(self) -> GroupedResult:
        """Drain :meth:`stream`; returns the final :class:`GroupedResult`."""
        final: Optional[GroupedSnapshot] = None
        for final in self.stream():
            pass
        assert final is not None and final.result is not None
        return final.result

    # ------------------------------------------------------------- streaming
    def stream(self) -> Iterator[GroupedSnapshot]:
        """Progressive engine: one :class:`GroupedSnapshot` per round.

        Rounds advance every still-active group by one expansion; the
        last snapshot has ``final=True`` and carries the
        :class:`GroupedResult`.  Closing the generator cancels the run
        (executor teardown; no further round is computed).
        """
        for snap in self._stream_core():
            self._stream_emitted += 1
            yield snap

    def checkpoint(self) -> Dict[str, Any]:
        """Round-boundary checkpoint: snapshots yielded so far plus the
        losses applied (with their strata filters), pinned to round
        boundaries.  Valid between snapshots; with the construction
        arguments (keys, columns, measures, config incl. seed) it is
        everything :meth:`restore` needs — recovery is deterministic
        replay, no per-group bootstrap state is serialized."""
        return checkpoint_doc(self._stream_emitted, self._applied_losses)

    def restore(self, checkpoint: Mapping[str, Any]
                ) -> Iterator[GroupedSnapshot]:
        """Resume from a :meth:`checkpoint` taken on an identically-
        constructed session: yields exactly the remaining snapshots,
        byte-identical to an uninterrupted run.  Must be called on a
        fresh session; raises
        :class:`~repro.core.checkpoint.CheckpointReplayError` when the
        replay cannot reach the checkpointed round."""
        if self._started or self._stream_emitted:
            raise RuntimeError("restore() needs a fresh session; this "
                               "one already streamed")
        return replay_stream(self, checkpoint)

    def _stream_core(self) -> Iterator[GroupedSnapshot]:
        if self._started:
            raise RuntimeError("a GroupedEarlSession streams only once")
        self._started = True
        if self._cancelled:
            return
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        self._rng = rng  # held for lazily-derived loss randomness
        sampler = StratifiedSampler(
            self._keys,
            allocation=(self._allocation
                        if self._allocation != ALLOCATION_SCHEDULE
                        else "proportional"))
        groups = self._setup_groups(sampler, rng)
        self._groups = groups

        executor = resolve_executor(cfg)
        shared: List[Optional[BroadcastHandle]] = []
        try:
            board = self._initial_board(groups)
            if not any(g.active for g in groups):
                yield self._snapshot(0, board, (), groups, final=True)
                return

            shared = self._broadcast_columns(executor, groups)
            round_no = 0
            # _max_rounds() is re-read every round: an external quota
            # injection mid-stream raises the bound to the budgeted
            # allowance, and range() would have frozen the original.
            while round_no < self._max_rounds():
                round_no += 1
                if self._cancelled:
                    return
                updated: List[Tuple[Hashable, str]] = []
                if self._pending_loss:
                    updated.extend(self._apply_losses(groups, shared, board))
                active = [g for g in groups if g.active]
                if not active:
                    if updated:
                        # A reported loss just finalized the last
                        # group(s); the stream still owes its final
                        # snapshot.
                        yield self._snapshot(round_no, board,
                                             tuple(updated), groups,
                                             final=True)
                        return
                    return  # every group finalized on the previous round
                override, self._quota_override = self._quota_override, None
                if override is not None:
                    quotas = {}
                    for group in active:
                        quota = int(override.get(group.key, 0))
                        cap = (group.bound or group.size) - group.consumed
                        if quota > 0 and cap > 0:
                            quotas[group.key] = min(quota, cap)
                else:
                    quotas = self._round_quotas(sampler, active)
                work: List[Tuple[_MeasureState, BroadcastHandle,
                                 int, int]] = []
                offered: List[Tuple[_GroupState, _MeasureState]] = []
                for group in active:
                    quota = quotas.get(group.key, 0)
                    if group.degraded:
                        cap = (group.bound or group.size) - group.consumed
                        quota = min(quota, cap)
                        if quota <= 0 and cap <= 0:
                            # Every surviving row is consumed: no round
                            # can improve this group, so finalize with
                            # best-so-far bounds (degrade, don't die).
                            updated.extend(
                                self._finalize_degraded(group, board))
                            continue
                    if quota <= 0:
                        continue
                    sampler.take(group.key, quota)
                    lo, hi = group.consumed, group.consumed + quota
                    group.consumed = hi
                    group.iteration += 1
                    for mstate in group.active_measures:
                        if group.local is not None:
                            handle: Any = group.local[mstate.index]
                            base = 0
                        else:
                            handle = shared[mstate.index]
                            base = mstate.seg_start
                        work.append((mstate, handle, base + lo, base + hi))
                        offered.append((group, mstate))
                if not work:
                    if override is not None:
                        # An externally-injected round starved this
                        # session — the scheduler's choice, not a
                        # terminal condition.  Hand control back with an
                        # empty snapshot; fresh quotas may arrive before
                        # the next round.
                        yield self._snapshot(round_no, board,
                                             tuple(updated), groups,
                                             final=False)
                        continue
                    # A budgeted round allocated nothing (budget smaller
                    # than the active group count after caps): finalize
                    # what is left as best-effort rather than spin.
                    self._finalize_stalled(groups, board)
                    yield self._snapshot(round_no, board, tuple(updated),
                                         groups, final=True)
                    return
                with _TRACER.span("grouped.round",
                                  attrs={"round": round_no,
                                         "groups": len(active),
                                         "offers": len(work)}):
                    estimates = self._offer_round(executor, work)
                if _METRICS.enabled:
                    _METRICS.counter("repro_engine_rounds_total",
                                     labels={"engine": "grouped"},
                                     help="engine expansion rounds").inc()
                    _METRICS.counter("repro_engine_rows_total",
                                     labels={"engine": "grouped"},
                                     help="sample rows consumed by rounds"
                                     ).inc(sum(hi - lo for _, _, lo, hi
                                               in work))

                for (group, mstate), estimate in zip(offered, estimates):
                    mstate.estimate = estimate
                    # A degraded group can only reach its surviving rows.
                    reachable = ((group.bound or group.size)
                                 if group.degraded else group.size)
                    expand = (not estimate.meets(mstate.sigma)
                              and group.consumed < reachable
                              and group.iteration < cfg.max_iterations)
                    mstate.iterations.append(IterationRecord(
                        iteration=group.iteration,
                        sample_size=group.consumed,
                        accuracy=estimate, simulated_seconds=0.0,
                        expanded=expand))
                    if not expand:
                        mstate.result = self._measure_result(group, mstate)
                    entry = self._entry(group, mstate)
                    board[group.key][mstate.measure.name] = entry
                    updated.append((group.key, mstate.measure.name))
                for group in active:
                    if group.active and group.consumed >= group.target:
                        group.target = min(
                            group.size,
                            math.ceil(group.consumed
                                      * cfg.expansion_factor))
                still_active = [g for g in groups if g.active]
                yield self._snapshot(round_no, board, tuple(updated),
                                     groups, final=not still_active)
                if not still_active:
                    return
            # max-round safety net (only reachable with budgeted
            # allocation trickling quotas): best-effort finalize.
            self._finalize_stalled(groups, board)
            yield self._snapshot(self._max_rounds() + 1, board, (),
                                 groups, final=True)
        finally:
            executor.close()

    # ---------------------------------------------------------------- set-up
    def _setup_groups(self, sampler: StratifiedSampler,
                      rng: np.random.Generator) -> List[_GroupState]:
        """Seed, permute and pilot every group; resolve exact fallbacks.

        Mirrors ``EarlSession.stream()`` per group and per measure: the
        group RNG draws the permutation first, then (for a single
        measure) SSABE and the stage continue the same stream.
        """
        cfg = self._config
        keys = sampler.keys
        seeds = rng.integers(0, 2**63 - 1, size=len(keys), dtype=np.int64)
        groups: List[_GroupState] = []
        for key, seed in zip(keys, seeds):
            group = _GroupState(key, sampler.population(key), int(seed),
                                sampler.rows(key))
            self._group_seeds[key] = group.seed
            group_rng = ensure_rng(group.seed)
            sampler.attach_rng(key, group_rng)
            order = sampler.order(key)
            single = len(self._measures) == 1
            streams = ([] if single
                       else spawn_child(group_rng, 2 * len(self._measures)))
            pilot_n = pilot_size_for(cfg, group.size)
            for i, measure in enumerate(self._measures):
                ssabe_rng = group_rng if single else streams[2 * i]
                stage_rng = group_rng if single else streams[2 * i + 1]
                mstate = _MeasureState(
                    measure, i, get_statistic(measure.statistic),
                    cfg.sigma if measure.sigma is None else measure.sigma,
                    get_correction(measure.correction,
                                   get_statistic(measure.statistic).name))
                group_values = self._columns[i][group.rows]
                pilot = group_values[order[:pilot_n]]
                if i == 0:
                    group.pilot_std = float(np.std(
                        np.asarray(pilot, dtype=float).reshape(pilot_n, -1)
                        [:, 0], ddof=1)) if pilot_n > 1 else 0.0
                if cfg.B_override is not None and cfg.n_override is not None:
                    B, n = cfg.B_override, cfg.n_override
                elif pilot_n < 2 ** cfg.subsample_levels:
                    # The group is too small for SSABE's nested pilot
                    # halvings (a solo session would refuse such an
                    # input outright); a group this tiny is cheaper to
                    # answer exactly, so force the fallback below.
                    B, n = 1, group.size
                else:
                    mstate.ssabe = estimate_parameters(
                        pilot, group.size, mstate.statistic,
                        sigma=mstate.sigma, tau=cfg.tau,
                        levels=cfg.subsample_levels, B_min=cfg.B_min,
                        stability_window=cfg.stability_window,
                        maintenance=cfg.maintenance, seed=ssabe_rng)
                    B = cfg.B_override or mstate.ssabe.B
                    n = cfg.n_override or mstate.ssabe.n
                mstate.B, mstate.n = B, n
                if B * n >= group.size:
                    mstate.used_fallback = True
                    mstate.result = exact_fallback_result(
                        mstate.statistic, group_values,
                        sigma=mstate.sigma, ssabe=mstate.ssabe)
                else:
                    mstate.permuted = group_values[order]
                    mstate.stage = make_estimation_stage(
                        mstate.statistic, B, cfg, seed=stage_rng,
                        executor=None)
                group.measures.append(mstate)
            if group.active:
                group.target = min(
                    max(max(m.n for m in group.active_measures), 2),
                    group.size)
            groups.append(group)
        if self._allocation == "neyman":
            for group in groups:
                sampler.set_scale(group.key, group.pilot_std)
        return groups

    def _broadcast_columns(self, executor: Executor,
                           groups: List[_GroupState]
                           ) -> List[Optional[BroadcastHandle]]:
        """Ship each measure's stratified-ordered column once.

        Per group the segment holds the group's permuted rows up to the
        most its expansion policy can ever consume (the SessionManager
        bound, applied per group), so early-stopping sessions never copy
        or ship rows no round could read.  Budgeted allocations can
        out-run a group's own schedule, so they keep the whole group.
        Every later delta is a ``[lo, hi)`` slice of a segment —
        zero-copy on shared-memory backends, shipped once at pool
        construction on process pools.
        """
        cfg = self._config
        bounds: Dict[Hashable, int] = {}
        for group in groups:
            if not group.active:
                continue
            if self._allocation != ALLOCATION_SCHEDULE:
                bounds[group.key] = group.size
                continue
            bound = group.target
            for _ in range(cfg.max_iterations - 1):
                if bound >= group.size:
                    break
                bound = min(group.size,
                            math.ceil(bound * cfg.expansion_factor))
            bounds[group.key] = bound
        for group in groups:
            group.bound = bounds.get(group.key, 0)
        handles: List[Optional[BroadcastHandle]] = []
        for i in range(len(self._measures)):
            segments: List[np.ndarray] = []
            offset = 0
            for group in groups:
                mstate = group.measures[i]
                permuted, mstate.permuted = mstate.permuted, None
                if mstate.done or group.key not in bounds:
                    continue
                assert permuted is not None
                segment = permuted[:bounds[group.key]]
                mstate.seg_start = offset
                offset += len(segment)
                segments.append(segment)
            handles.append(executor.broadcast(np.concatenate(segments))
                           if segments else None)
        return handles

    # ------------------------------------------------------------- §3.4 loss
    def _apply_losses(self, groups: List[_GroupState],
                      shared: List[Optional[BroadcastHandle]],
                      board: Dict[Hashable, Dict[str, GroupEstimate]]
                      ) -> List[Tuple[Hashable, str]]:
        """Apply the pending loss reports: drop lost rows per group,
        rebuild the survivors' bootstrap stages, finalize dead strata.

        Each affected active group keeps every materialized sample row
        independently with probability ``1 - fraction``; its working
        columns become compacted per-group locals, its stages are
        rebuilt (seeded from a lazily-spawned loss stream, so clean
        runs draw nothing extra) and the surviving consumed prefix is
        re-offered so the next round extends a consistent resample
        state.  A stratum losing every row finalizes best-so-far.
        Returns the ``(key, measure)`` pairs whose board entry changed.
        """
        events, self._pending_loss = self._pending_loss, []
        for fraction, key_set, seed in events:
            self._applied_losses.append(
                loss_event(self._stream_emitted, fraction, seed,
                           keys=key_set))
        if self._loss_rng is None:
            assert self._rng is not None
            self._loss_rng = spawn_child(self._rng, 1)[0]
        cfg = self._config
        updated: List[Tuple[Hashable, str]] = []
        for group in groups:
            if not group.active or group.bound <= 0:
                continue
            seg_len = group.bound
            keep = np.ones(seg_len, dtype=bool)
            hit = False
            for fraction, key_set, seed in events:
                if key_set is not None and group.key not in key_set:
                    continue
                hit = True
                if fraction >= 1.0:
                    keep[:] = False
                    continue
                event_rng = (ensure_rng(seed) if seed is not None
                             else self._loss_rng)
                keep &= event_rng.random(seg_len) >= fraction
            if not hit or keep.all():
                continue  # the failure missed this group entirely
            group.degraded = True
            survivors_n = int(np.count_nonzero(keep))
            group.lost += seg_len - survivors_n
            if survivors_n == 0:
                # Dead stratum: finalize before touching consumed, so
                # best-so-far results stand on the pre-loss sample.
                group.bound = 0
                updated.extend(self._finalize_degraded(group, board))
                continue
            new_consumed = int(np.count_nonzero(keep[:group.consumed]))
            if group.local is None:
                group.local = [None] * len(group.measures)
            streams = spawn_child(self._loss_rng, len(group.measures))
            for mstate in group.active_measures:
                local = group.local[mstate.index]
                if local is not None:
                    column = local.value
                else:
                    handle = shared[mstate.index]
                    assert handle is not None
                    column = handle.value[
                        mstate.seg_start:mstate.seg_start + seg_len]
                surviving = column[keep]
                group.local[mstate.index] = _LocalColumn(surviving)
                mstate.stage = make_estimation_stage(
                    mstate.statistic, mstate.B, cfg,
                    seed=streams[mstate.index], executor=None)
                if new_consumed:
                    mstate.estimate = mstate.stage.offer(
                        surviving[:new_consumed])
            group.consumed = new_consumed
            group.bound = survivors_n
            if new_consumed:
                for mstate in group.active_measures:
                    board[group.key][mstate.measure.name] = \
                        self._entry(group, mstate)
                    updated.append((group.key, mstate.measure.name))
        return updated

    def _finalize_degraded(self, group: _GroupState,
                           board: Dict[Hashable, Dict[str, GroupEstimate]]
                           ) -> List[Tuple[Hashable, str]]:
        """Best-so-far finalize for a degraded group that can no longer
        improve; measures that never produced an estimate are withdrawn
        (inventing a result with no estimate would not be honest)."""
        updated: List[Tuple[Hashable, str]] = []
        for mstate in group.active_measures:
            if mstate.estimate is not None:
                mstate.result = self._measure_result(group, mstate)
                board[group.key][mstate.measure.name] = \
                    self._entry(group, mstate)
                updated.append((group.key, mstate.measure.name))
            else:
                mstate.dead = True
        return updated

    # ---------------------------------------------------------------- rounds
    def _max_rounds(self) -> int:
        """Round-count safety bound: schedule mode terminates within
        ``max_iterations`` rounds; budgeted modes — including external
        quota injection — may trickle quotas, so allow proportionally
        more before best-effort finalize."""
        if self._allocation == ALLOCATION_SCHEDULE \
                and not self._externally_budgeted:
            return self._config.max_iterations
        return self._config.max_iterations * 8

    def _round_quotas(self, sampler: StratifiedSampler,
                      active: List[_GroupState]) -> Dict[Hashable, int]:
        scheduled = {g.key: g.target - g.consumed for g in active}
        if self._allocation == ALLOCATION_SCHEDULE:
            return scheduled
        total = self._round_budget or sum(scheduled.values())
        if total <= 0:
            return {}
        return sampler.allocate(total, active=[g.key for g in active])

    def _offer_round(self, executor: Executor,
                     work: List[Tuple[_MeasureState, BroadcastHandle,
                                      int, int]]) -> List[AccuracyEstimate]:
        """Feed every active pair's delta through the backend; ordered
        gather keeps results byte-identical across backends."""
        if executor.is_parallel and len(work) > 1:
            args = [(m.stage, shared, lo, hi) for m, shared, lo, hi in work]
            if executor.shares_memory:
                return executor.map(_offer_shared, args)
            pairs = executor.map(_offer_owned, args)
            estimates: List[AccuracyEstimate] = []
            for (mstate, *_), (stage, estimate) in zip(work, pairs):
                mstate.stage = stage  # rebind the worker's mutated copy
                estimates.append(estimate)
            return estimates
        return [m.stage.offer(shared.value[lo:hi])
                for m, shared, lo, hi in work]

    # ------------------------------------------------------------ finalizing
    def _measure_result(self, group: _GroupState,
                        mstate: _MeasureState) -> EarlResult:
        estimate = mstate.estimate
        assert estimate is not None
        p = group.consumed / group.size
        return EarlResult(
            estimate=mstate.correction(estimate.estimate, p),
            uncorrected_estimate=estimate.estimate,
            error=estimate.error,
            achieved=estimate.meets(mstate.sigma),
            sigma=mstate.sigma,
            statistic=mstate.statistic.name,
            n=group.consumed,
            B=mstate.B or 0,
            population_size=group.size,
            sample_fraction=p,
            used_fallback=False,
            simulated_seconds=0.0,
            iterations=list(mstate.iterations),
            ssabe=mstate.ssabe,
            accuracy=estimate,
            degraded=group.degraded,
            lost_fraction=group.lost_fraction)

    def _finalize_stalled(self, groups: List[_GroupState],
                          board: Dict[Hashable, Dict[str, GroupEstimate]]
                          ) -> None:
        """Best-effort results for measures a budgeted run starved."""
        for group in groups:
            for mstate in group.active_measures:
                if mstate.estimate is not None:
                    mstate.result = self._measure_result(group, mstate)
                elif group.degraded:
                    # The stratum's rows were lost before any estimate:
                    # scanning them exactly would read dead data, so the
                    # measure is withdrawn instead.
                    mstate.dead = True
                    continue
                else:
                    # Never offered a single delta (the budget starved
                    # this group for every round): answering exactly is
                    # the only honest terminal choice left.  The scan
                    # is charged to rows_processed through the
                    # used_fallback flag.
                    mstate.used_fallback = True
                    mstate.result = exact_fallback_result(
                        mstate.statistic,
                        self._columns[mstate.index][group.rows],
                        sigma=mstate.sigma, ssabe=mstate.ssabe)
                board[group.key][mstate.measure.name] = \
                    self._entry(group, mstate)

    # ------------------------------------------------------------- snapshots
    def _entry(self, group: _GroupState,
               mstate: _MeasureState) -> GroupEstimate:
        if mstate.used_fallback:
            res = mstate.result
            assert res is not None
            return GroupEstimate(
                key=group.key, aggregate=mstate.measure.name,
                statistic=mstate.statistic.name,
                estimate=res.estimate,
                uncorrected_estimate=res.uncorrected_estimate,
                error=0.0, cv=0.0,
                ci_low=res.estimate, ci_high=res.estimate,
                sample_size=group.size, group_size=group.size,
                sample_fraction=1.0, achieved=True, done=True,
                used_fallback=True, accuracy=None, result=res,
                degraded=group.degraded,
                lost_fraction=group.lost_fraction)
        estimate = mstate.estimate
        assert estimate is not None
        p = group.consumed / group.size
        return GroupEstimate(
            key=group.key, aggregate=mstate.measure.name,
            statistic=mstate.statistic.name,
            estimate=mstate.correction(estimate.estimate, p),
            uncorrected_estimate=estimate.estimate,
            error=estimate.error, cv=estimate.cv,
            ci_low=estimate.ci_low, ci_high=estimate.ci_high,
            sample_size=group.consumed, group_size=group.size,
            sample_fraction=p,
            achieved=estimate.meets(mstate.sigma),
            done=mstate.done, used_fallback=False,
            accuracy=estimate, result=mstate.result,
            degraded=group.degraded,
            lost_fraction=group.lost_fraction)

    def _initial_board(self, groups: List[_GroupState]
                       ) -> Dict[Hashable, Dict[str, GroupEstimate]]:
        """Seed the cumulative per-pair board with the exact-fallback
        entries resolved during set-up."""
        board: Dict[Hashable, Dict[str, GroupEstimate]] = {}
        for group in groups:
            board[group.key] = {}
            for mstate in group.measures:
                if mstate.used_fallback:
                    board[group.key][mstate.measure.name] = \
                        self._entry(group, mstate)
        return board

    def _snapshot(self, round_no: int,
                  board: Dict[Hashable, Dict[str, GroupEstimate]],
                  updated: Tuple[Tuple[Hashable, str], ...],
                  groups: List[_GroupState], *,
                  final: bool) -> GroupedSnapshot:
        # Distinct rows touched per group: a group where any measure
        # answered exactly was scanned whole (its sampled rows are a
        # subset of that scan); otherwise only the consumed prefix.
        rows = sum(g.size
                   if any(m.used_fallback for m in g.measures)
                   else g.consumed
                   for g in groups)
        degraded = any(g.degraded for g in groups)
        lost = sum(g.lost for g in groups)
        materialized = lost + sum(g.bound for g in groups)
        lost_fraction = lost / materialized if materialized else 0.0
        result = None
        if final:
            result = GroupedResult(
                groups={g.key: {m.measure.name: m.result
                                for m in g.measures if m.result is not None}
                        for g in groups},
                rounds=round_no,
                rows_processed=rows,
                population_size=len(self._keys),
                degraded=degraded,
                lost_fraction=lost_fraction)
        return GroupedSnapshot(
            round=round_no,
            groups={key: dict(by_agg) for key, by_agg in board.items()},
            updated=updated,
            rows_processed=rows,
            population_size=len(self._keys),
            active_groups=sum(1 for g in groups if g.active),
            final=final,
            result=result,
            degraded=degraded,
            lost_fraction=lost_fraction)
