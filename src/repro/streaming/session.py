"""Concurrent multi-query EARL sessions over one shared sample.

Interactive analytics rarely asks one question: a dashboard wants the
mean, a tail quantile and a correlation of the *same* dataset at once.
Running one :class:`~repro.core.EarlSession` per query would draw one
pilot and one growing uniform sample per query — paying the sampling
and (on a cluster) the scan cost k times for k queries.

:class:`SessionManager` instead runs all submitted queries over **one**
pilot and **one** growing uniform sample (a random permutation prefix —
every query's sampler is the same uniform-without-replacement design,
which is what makes them *compatible*): each expansion round draws a
single delta and feeds it to every active query's own delta-maintained
:class:`~repro.core.delta.ResampleSet` (§4.1).  Queries terminate
independently — each stops expanding the moment its own error bound σ
is met — and the shared sample only keeps growing while some query
still needs more data.  This is the M3R-style in-memory reuse across
jobs and the Shark-style interactive serving loop from PAPERS.md,
applied to EARL's early-answer machinery.

The per-round accuracy-estimation stages of the active queries are
independent work units, so they fan out through the PR-1 executor seam
(:class:`~repro.exec.Executor`, selected by ``EarlConfig.executor``):
every query owns a pre-spawned RNG stream and results are gathered in
submission order, so serial, thread and process backends produce
byte-identical results for a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.accuracy import AccuracyEstimate, AccuracyEstimationStage
from repro.core.checkpoint import checkpoint_doc, loss_event, replay_stream
from repro.core.config import EarlConfig
from repro.core.correction import CorrectionLike, get_correction
from repro.core.earl import (
    _exact_snapshot,
    check_row_compatibility,
    exact_fallback_result,
    make_estimation_stage,
    pilot_size_for,
)
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.result import EarlResult, IterationRecord, ProgressSnapshot
from repro.core.ssabe import SSABEResult, estimate_parameters
from repro.exec.executor import BroadcastHandle, Executor, resolve_executor
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.util.rng import ensure_rng, spawn_child


class QueryHandle:
    """One query of a :class:`SessionManager` run.

    Carries the query's parameters, the snapshots observed so far, and
    — once the query terminated — its :class:`~repro.core.EarlResult`.
    :meth:`cancel` withdraws the query from subsequent expansion rounds
    (its resample set is simply no longer updated; the other queries
    keep running on the shared sample).
    """

    def __init__(self, name: str, statistic, *, sigma: float,
                 error_metric: str, correction,
                 B_override: Optional[int],
                 n_override: Optional[int]) -> None:
        self.name = name
        self.statistic = statistic
        self.sigma = sigma
        self.error_metric = error_metric
        self.correction = correction
        self.B_override = B_override
        self.n_override = n_override
        self.B: Optional[int] = None
        self.n: Optional[int] = None
        self.ssabe: Optional[SSABEResult] = None
        self.stage: Optional[AccuracyEstimationStage] = None
        self.iterations: List[IterationRecord] = []
        self.snapshots: List[ProgressSnapshot] = []
        self.result: Optional[EarlResult] = None
        self.cancelled = False

    @property
    def done(self) -> bool:
        """Whether the query terminated (result ready) or was cancelled."""
        return self.result is not None or self.cancelled

    def cancel(self) -> None:
        """Withdraw the query from subsequent expansion rounds."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.result is not None
                 else "cancelled" if self.cancelled else "running")
        return (f"QueryHandle({self.name!r}, "
                f"{self.statistic.name}, sigma={self.sigma}, {state})")


def _offer_shared(args: Tuple[AccuracyEstimationStage, BroadcastHandle,
                              int, int]) -> AccuracyEstimate:
    """Fan-out unit for shared-memory backends: mutate in place.

    The delta is a ``[lo, hi)`` slice of the session's broadcast
    permuted-sample prefix — the one per-session copy every round
    reads."""
    stage, shared, lo, hi = args
    return stage.offer(shared.value[lo:hi])


def _offer_owned(args: Tuple[AccuracyEstimationStage, BroadcastHandle,
                             int, int]
                 ) -> Tuple[AccuracyEstimationStage, AccuracyEstimate]:
    """Fan-out unit for process backends: the worker's mutated stage is
    shipped back and rebound by the caller (module-level so process
    pools pickle it by reference).  The sample itself never rides the
    per-round task — workers hold it from the session's one broadcast
    and slice the delta locally."""
    stage, shared, lo, hi = args
    estimate = stage.offer(shared.value[lo:hi])
    return stage, estimate


class SessionManager:
    """Run multiple concurrent EARL queries over one shared sample.

    Example
    -------
    >>> import numpy as np
    >>> from repro.streaming import SessionManager
    >>> from repro.core import EarlConfig
    >>> data = np.random.default_rng(0).lognormal(0, 1, 300_000)
    >>> mgr = SessionManager(data, config=EarlConfig(sigma=0.05, seed=1))
    >>> q_mean = mgr.submit("mean")
    >>> q_p90 = mgr.submit("p90", sigma=0.1)
    >>> results = mgr.run()
    >>> sorted(results) == ["mean", "p90"]
    True

    ``data`` may be 1-D (numeric items) or 2-D (rows are items, e.g.
    (x, y) pairs for ``"correlation"`` queries).  ``config`` provides
    the shared knobs — seed, pilot sizing, expansion policy, resample
    maintenance, and the execution backend; per-query σ / error metric
    / B / n come from :meth:`submit`.

    A manager streams **once**: iterate :meth:`stream` (or call
    :meth:`run`, which drains it).  Closing the stream cancels every
    query still running.
    """

    def __init__(self, data: Sequence[float], *,
                 config: Optional[EarlConfig] = None) -> None:
        self._data = np.asarray(data, dtype=float)
        if self._data.ndim not in (1, 2) or len(self._data) == 0:
            raise ValueError("data must be a non-empty 1-D sequence "
                             "or a 2-D array of row items")
        self._config = config or EarlConfig()
        self._queries: List[QueryHandle] = []
        self._started = False
        self._cancelled = False
        # External-stepping state (populated by prepare()); stream()
        # is a thin generator over prepare()/run_round()/finish(), and
        # the cross-query scheduler drives the same API directly.
        self._executor: Optional[Executor] = None
        self._shared: Optional[BroadcastHandle] = None
        self._active: List[QueryHandle] = []
        self._N = len(self._data)
        self._consumed = 0
        self._bound = 0
        self._round = 0
        self._rounds_allowed = 0
        # §3.4 degraded-mode state: pending loss reports, applied at the
        # next round boundary, and the resulting accounting.
        self._pending_loss: List[Tuple[float, Optional[Any]]] = []
        # Checkpoint provenance: events produced so far (prepare and
        # every round) and the losses applied, pinned to boundaries.
        self._events_emitted = 0
        self._applied_losses: List[Dict[str, Any]] = []
        self._rng: Optional[np.random.Generator] = None
        self._loss_rng: Optional[np.random.Generator] = None
        self._original_bound = 0
        self.degraded = False
        self.lost_fraction = 0.0

    @classmethod
    def from_hdfs(cls, fs, path: str, *,
                  config: Optional[EarlConfig] = None,
                  ledger=None,
                  split_logical_bytes: Optional[int] = None,
                  parser=None,
                  cached: bool = True) -> "SessionManager":
        """Build a session over a newline-delimited simulated-HDFS file.

        The file is ingested as one numeric column through the
        filesystem's columnar split cache
        (:func:`repro.hdfs.read_numeric_column`): the first session over
        ``path`` newline-indexes and decodes each split once, and every
        later session — a dashboard reopening the same dataset, the
        next round of an iterative driver — replays the cached column
        without re-parsing (the M3R-style reuse this module's shared
        sample already applies *within* a session, extended across
        sessions).  The simulated cost of the scan is charged to
        ``ledger`` on every call regardless; ``cached=False`` pins the
        scalar ingest path.
        """
        from repro.hdfs.split_cache import read_numeric_column

        data = read_numeric_column(fs, path, ledger=ledger,
                                   split_logical_bytes=split_logical_bytes,
                                   parser=parser, cached=cached)
        return cls(data, config=config)

    @property
    def config(self) -> EarlConfig:
        return self._config

    @property
    def queries(self) -> List[QueryHandle]:
        """The submitted query handles, in submission order."""
        return list(self._queries)

    @property
    def consumed(self) -> int:
        """Rows of the shared sample consumed so far."""
        return self._consumed

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was requested."""
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the whole session: every query is withdrawn and the
        round loop ends at the next round boundary.

        Safe to call from any thread while another thread drives
        :meth:`stream` (plain flags checked between rounds).  Only the
        driving thread may ``close()`` the generator itself, so this is
        the cross-thread teardown path; individual queries are still
        cancelled one at a time via :meth:`QueryHandle.cancel`.
        """
        self._cancelled = True
        for query in self._queries:
            query.cancel()

    def report_loss(self, fraction: float, *, seed: Optional[Any] = None
                    ) -> None:
        """Report that roughly ``fraction`` of the shared sample's rows
        were lost to a failure (a node died holding part of the sample).

        Applied at the next round boundary (§3.4 degrade-don't-die):
        each in-memory sample row independently survives with
        probability ``1 - fraction``, every live query's resample set is
        rebuilt from the survivors (bounds widen accordingly), and the
        expansion loop keeps running over what remains.  Queries that
        already terminated keep their results — those stood on data that
        was alive when computed.  Safe to call from any thread while
        another drives :meth:`stream`.  ``seed`` pins the loss pattern;
        by default it derives deterministically from the session seed.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(
                f"loss fraction must be in (0, 1), got {fraction}")
        self._pending_loss.append((float(fraction), seed))
        if _METRICS.enabled:
            _METRICS.counter("repro_loss_reports_total",
                             labels={"engine": "session_manager"},
                             help="§3.4 sample-loss reports").inc()

    def submit(self, statistic: StatisticLike, *,
               sigma: Optional[float] = None,
               error_metric: Optional[str] = None,
               correction: CorrectionLike = "auto",
               B_override: Optional[int] = None,
               n_override: Optional[int] = None,
               name: Optional[str] = None) -> QueryHandle:
        """Register a query; returns its :class:`QueryHandle`.

        Per-query overrides default to the shared config: ``sigma``
        (the error bound this query must meet), ``error_metric``, and
        the SSABE ``B_override``/``n_override`` escape hatch.  ``name``
        keys the :meth:`run` result dict (default: the statistic's
        name, suffixed on collision).
        """
        if self._started:
            raise RuntimeError("cannot submit after streaming started")
        stat = get_statistic(statistic)
        check_row_compatibility(stat, self._data)
        if name is None:
            name = stat.name
            taken = {q.name for q in self._queries}
            suffix = 2
            while name in taken:
                name = f"{stat.name}#{suffix}"
                suffix += 1
        elif any(q.name == name for q in self._queries):
            raise ValueError(f"duplicate query name {name!r}")
        handle = QueryHandle(
            name, stat,
            sigma=self._config.sigma if sigma is None else sigma,
            error_metric=(self._config.error_metric if error_metric is None
                          else error_metric),
            correction=get_correction(correction, stat.name),
            B_override=(self._config.B_override if B_override is None
                        else B_override),
            n_override=(self._config.n_override if n_override is None
                        else n_override))
        self._queries.append(handle)
        return handle

    # ------------------------------------------------------------- streaming
    def stream(self) -> Iterator[Tuple[QueryHandle, ProgressSnapshot]]:
        """Run all queries concurrently, yielding ``(query, snapshot)``
        pairs as each round's accuracy estimates arrive.

        One shared pilot seeds every query's SSABE; one shared
        permutation prefix is the sample all queries read.  A query's
        final snapshot carries its :class:`~repro.core.EarlResult`.
        Cancel individual queries via
        :meth:`QueryHandle.cancel`, or the whole session by closing
        this generator.

        This is a thin generator over the external stepping API
        (:meth:`prepare` / :meth:`run_round` / :meth:`finish`): driving
        the unbudgeted steps directly — as the cross-query scheduler
        does — produces byte-identical snapshots in the same order.
        """
        events = self.prepare()
        try:
            yield from events  # §3.1 exact fallbacks, resolved at pilot
            while self.pending:
                for event in self.run_round():
                    yield event
        finally:
            self.finish()

    # --------------------------------------------------- external stepping
    def prepare(self) -> List[Tuple[QueryHandle, ProgressSnapshot]]:
        """Pilot phase of the run: permutation, shared pilot, per-query
        SSABE, §3.1 exact fallbacks, and the session's one broadcast.

        Returns the ``(query, snapshot)`` events of queries resolved
        exactly during the pilot.  After this, :meth:`run_round`
        advances the remaining queries one expansion round at a time
        (the cross-query scheduler's entry point); :meth:`stream` is
        the equivalent single-consumer generator.
        """
        if not self._queries:
            raise RuntimeError("no queries submitted")
        if self._started:
            raise RuntimeError("a SessionManager streams only once")
        self._started = True
        if self._cancelled:
            return []
        cfg = self._config
        data = self._data
        N = self._N
        rng = ensure_rng(cfg.seed)
        self._rng = rng  # held for lazily-derived loss randomness
        order = rng.permutation(N)  # the ONE shared sample
        self._executor = executor = resolve_executor(cfg)
        events: List[Tuple[QueryHandle, ProgressSnapshot]] = []
        _span = _TRACER.span("session_manager.prepare",
                             attrs={"queries": len(self._queries)})
        try:
            # ------------------------------------------ shared pilot
            pilot = data[order[:pilot_size_for(cfg, N)]]
            # Two pre-spawned streams per query (SSABE, stage), so a
            # query's randomness is independent of submission of others
            # consuming theirs.
            children = spawn_child(rng, 2 * len(self._queries))
            active: List[QueryHandle] = []
            for i, query in enumerate(self._queries):
                if query.cancelled:
                    # A query withdrawn before streaming gets no pilot,
                    # contributes nothing to the broadcast bound or any
                    # round's target — and, because its RNG streams were
                    # pre-spawned above, its withdrawal leaves every
                    # other query's randomness untouched.
                    continue
                ssabe_rng, stage_rng = children[2 * i], children[2 * i + 1]
                if (query.B_override is not None
                        and query.n_override is not None):
                    B, n = query.B_override, query.n_override
                else:
                    query.ssabe = estimate_parameters(
                        pilot, N, query.statistic, sigma=query.sigma,
                        tau=cfg.tau, levels=cfg.subsample_levels,
                        B_min=cfg.B_min,
                        stability_window=cfg.stability_window,
                        maintenance=cfg.maintenance, seed=ssabe_rng)
                    B = query.B_override or query.ssabe.B
                    n = query.n_override or query.ssabe.n
                query.B, query.n = B, n
                if B * n >= N:
                    result = exact_fallback_result(
                        query.statistic, self._data, sigma=query.sigma,
                        ssabe=query.ssabe)
                    query.result = result
                    snapshot = _exact_snapshot(result)
                    query.snapshots.append(snapshot)
                    events.append((query, snapshot))
                    continue
                # Per-query delta-maintained resample set.  The stage
                # gets no executor of its own: the manager already fans
                # the *queries* out, and nesting pools gains nothing.
                query.stage = make_estimation_stage(
                    query.statistic, B,
                    replace(cfg, error_metric=query.error_metric),
                    seed=stage_rng, executor=None)
                active.append(query)

            # Broadcast the shared sample ONCE for the whole session —
            # every round's delta is a [lo, hi) slice of this handle,
            # so shared-memory backends never copy it and a process
            # pool receives it a single time (at worker spawn) instead
            # of once per query per round.  Bounded by the most the
            # expansion policy can consume (first target grown by
            # expansion_factor for max_iterations - 1 rounds), so an
            # early-stopping session over a huge dataset neither copies
            # nor ships data it could never read.
            if active:
                bound = min(max(max(q.n for q in active), 2), N)
                for _ in range(cfg.max_iterations - 1):
                    if bound >= N:
                        break
                    bound = min(N, math.ceil(bound * cfg.expansion_factor))
                self._shared = executor.broadcast(data[order[:bound]])
                self._bound = bound
                self._original_bound = bound
            self._active = active
            self._consumed = 0
            self._round = 0
            self._rounds_allowed = cfg.max_iterations
        except BaseException:
            self.finish()
            raise
        finally:
            _span.finish()
        self._events_emitted += len(events)
        return events

    @property
    def pending(self) -> bool:
        """Whether another :meth:`run_round` could make progress."""
        return (self._started
                and any(not q.cancelled for q in self._active)
                and self._round < self._rounds_allowed)

    def _next_target(self) -> int:
        active = [q for q in self._active if not q.cancelled]
        if not active:
            return self._consumed
        if self._consumed == 0:
            return min(max(max(q.n for q in active), 2), self._N)
        return min(self._N,
                   math.ceil(self._consumed * self._config.expansion_factor))

    def round_demand(self) -> int:
        """Rows the next unbudgeted round would add to the shared
        sample (0 when nothing is pending or the broadcast bound is
        reached) — what the scheduler treats as this engine's ask."""
        if not self.pending:
            return 0
        return max(0, min(self._next_target(), self._bound) - self._consumed)

    def live_demands(self) -> List[Dict[str, Any]]:
        """Per-active-query demand records for an external budget
        allocator.

        ``scale`` re-estimates the query's ``S`` from the live
        bootstrap error (``error ∝ S/√n`` ⇒ ``S ≈ error·√n``); before
        the first round it is unknown (``nan``) and the pilot-sized
        first draw is mandatory anyway.  All queries of a manager share
        one sample, so every record carries the same engine-level
        ``scheduled``/``remaining`` ask (``shared=True``).
        """
        demand = self.round_demand()
        remaining = max(0, self._bound - self._consumed)
        records: List[Dict[str, Any]] = []
        for query in self._active:
            if query.cancelled:
                continue
            accuracy = (query.iterations[-1].accuracy
                        if query.iterations else None)
            error = (float(accuracy.error) if accuracy is not None
                     else float("nan"))
            scale = (error * math.sqrt(self._consumed)
                     if accuracy is not None and self._consumed > 0
                     else float("nan"))
            records.append({
                "key": query.name, "error": error, "sigma": query.sigma,
                "consumed": self._consumed, "size": self._N,
                "scheduled": demand, "remaining": remaining,
                "scale": scale, "shared": True,
            })
        return records

    def run_round(self, budget: Optional[int] = None
                  ) -> List[Tuple[QueryHandle, ProgressSnapshot]]:
        """Advance the shared sample by one expansion round; returns
        the round's ``(query, snapshot)`` events.

        Unbudgeted rounds follow the session's own expansion schedule
        (the :meth:`stream` path, byte-identical).  ``budget`` caps the
        round's *new* rows — the scheduler's global-allocation hook —
        except on the first round, whose SSABE-sized draw is mandatory.
        Budgeted stepping can trickle rows, so it raises the allowed
        round count the way grouped budgeted allocation does; a round
        starved to zero new rows is a no-op (no iteration consumed).
        """
        if not self._started:
            raise RuntimeError("prepare() has not run")
        cfg = self._config
        if budget is not None:
            self._rounds_allowed = max(self._rounds_allowed,
                                       cfg.max_iterations * 8)
        self._active = active = [q for q in self._active if not q.cancelled]
        if not active or self._round >= self._rounds_allowed:
            return []
        if self._pending_loss:
            self._apply_losses(active)
        target = self._next_target()
        if budget is not None and self._consumed > 0:
            target = min(target, self._consumed + max(int(budget), 0))
        target = min(target, self._bound)
        if target <= self._consumed:
            if self.degraded and self._consumed >= self._bound:
                # The loss left no unconsumed survivors: no round can
                # make progress, so finalize with best-so-far bounds
                # instead of spinning (degrade, don't die).
                return self.finalize()
            return []
        self._round += 1
        lo, self._consumed = self._consumed, target
        with _TRACER.span("session_manager.round",
                          attrs={"round": self._round,
                                 "rows": target - lo}):
            estimates = self._offer_round(self._executor, active,
                                          self._shared, lo, target)
        if _METRICS.enabled:
            _METRICS.counter("repro_engine_rounds_total",
                             labels={"engine": "session_manager"},
                             help="engine expansion rounds").inc()
            _METRICS.counter("repro_engine_rows_total",
                             labels={"engine": "session_manager"},
                             help="sample rows consumed by rounds"
                             ).inc(target - lo)
        consumed, N = self._consumed, self._N
        events: List[Tuple[QueryHandle, ProgressSnapshot]] = []
        still_active: List[QueryHandle] = []
        for query, estimate in zip(active, estimates):
            # A degraded session can only reach its surviving rows; a
            # clean one stops at the population (the broadcast bound is
            # never binding there — it equals the schedule's max reach).
            reachable = min(N, self._bound) if self.degraded else N
            expand = (not estimate.meets(query.sigma)
                      and consumed < reachable
                      and self._round < self._rounds_allowed)
            query.iterations.append(IterationRecord(
                iteration=self._round, sample_size=consumed,
                accuracy=estimate, simulated_seconds=0.0,
                expanded=expand))
            if expand:
                snapshot = self._snapshot(query, estimate, consumed, N)
                still_active.append(query)
            else:
                query.result = self._query_result(
                    query, estimate, consumed, N)
                snapshot = self._snapshot(query, estimate, consumed, N,
                                          final=True, result=query.result)
            query.snapshots.append(snapshot)
            events.append((query, snapshot))
        self._active = still_active
        self._events_emitted += len(events)
        return events

    def finalize(self) -> List[Tuple[QueryHandle, ProgressSnapshot]]:
        """Force-terminate every still-active query with its latest
        estimate (best-effort, for a budget-starved scheduled run —
        mirrors the grouped engine's stalled finalize).  Queries that
        never saw a round are withdrawn instead: inventing a result
        with no estimate would not be honest."""
        events: List[Tuple[QueryHandle, ProgressSnapshot]] = []
        for query in self._active:
            if query.cancelled:
                continue
            if not query.iterations:
                query.cancel()
                continue
            estimate = query.iterations[-1].accuracy
            query.result = self._query_result(query, estimate,
                                              self._consumed, self._N)
            snapshot = self._snapshot(query, estimate, self._consumed,
                                      self._N, final=True,
                                      result=query.result)
            query.snapshots.append(snapshot)
            events.append((query, snapshot))
        self._active = []
        self._events_emitted += len(events)
        return events

    def finish(self) -> None:
        """Tear the executor down (idempotent; :meth:`stream` calls it
        on exit, the scheduler calls it when the engine drains)."""
        executor, self._executor = self._executor, None
        self._shared = None
        if executor is not None:
            executor.close()

    def run(self) -> Dict[str, Optional[EarlResult]]:
        """Drain :meth:`stream`; returns ``{name: result}`` (``None``
        for queries cancelled before terminating)."""
        for _ in self.stream():
            pass
        return {query.name: query.result for query in self._queries}

    # ------------------------------------------------------------ checkpoint
    def checkpoint(self) -> Dict[str, Any]:
        """Round-boundary checkpoint: the count of ``(query, snapshot)``
        events produced so far (pilot resolutions plus every round) and
        the losses applied, pinned to their boundaries.  Valid between
        rounds; with the construction arguments (data, config incl.
        seed, submissions in order) it is everything :meth:`restore`
        needs — recovery is deterministic replay, no bootstrap state is
        serialized."""
        return checkpoint_doc(self._events_emitted, self._applied_losses)

    def restore(self, checkpoint: Mapping[str, Any]
                ) -> Iterator[Tuple[QueryHandle, ProgressSnapshot]]:
        """Resume from a :meth:`checkpoint` taken on an identically-
        constructed manager (same data, config and submissions in the
        same order): yields exactly the remaining ``(query, snapshot)``
        events, byte-identical to an uninterrupted run.  Must be called
        on a fresh manager; raises
        :class:`~repro.core.checkpoint.CheckpointReplayError` when the
        replay cannot reach the checkpointed round."""
        if self._started:
            raise RuntimeError("restore() needs a fresh manager; this "
                               "one already streamed")
        return replay_stream(self, checkpoint)

    # --------------------------------------------------------------- helpers
    def _apply_losses(self, active: List[QueryHandle]) -> None:
        """Drop the reported losses from the shared sample and rebuild
        the live queries' resample sets from the survivors (§3.4).

        Each pending event keeps every in-memory sample row
        independently with probability ``1 - fraction``; the surviving
        rows are re-broadcast, every active query gets a fresh
        delta-maintained stage (seeded from a lazily-spawned loss
        stream, so clean runs draw nothing extra), and the surviving
        consumed prefix is re-offered so the next round extends a
        consistent resample state.  At least one row always survives.
        """
        events, self._pending_loss = self._pending_loss, []
        for fraction, seed in events:
            self._applied_losses.append(
                loss_event(self._events_emitted, fraction, seed))
        if self._shared is None or self._bound == 0:
            return
        if self._loss_rng is None:
            assert self._rng is not None
            self._loss_rng = spawn_child(self._rng, 1)[0]
        keep = np.ones(self._bound, dtype=bool)
        for fraction, seed in events:
            event_rng = (ensure_rng(seed) if seed is not None
                         else self._loss_rng)
            keep &= event_rng.random(self._bound) >= fraction
        if keep.all():
            return  # the failure missed every sample row: not degraded
        if not keep.any():
            keep[0] = True  # never lose the whole sample
        assert self._executor is not None
        survivors = self._shared.value[keep]
        old, self._shared = self._shared, self._executor.broadcast(survivors)
        self._executor.release(old)
        self._consumed = int(np.count_nonzero(keep[:self._consumed]))
        self._bound = len(survivors)
        self.degraded = True
        self.lost_fraction = 1.0 - self._bound / self._original_bound
        cfg = self._config
        streams = spawn_child(self._loss_rng, len(active))
        for query, stage_rng in zip(active, streams):
            query.stage = make_estimation_stage(
                query.statistic, query.B,
                replace(cfg, error_metric=query.error_metric),
                seed=stage_rng, executor=None)
            if self._consumed:
                query.stage.offer(self._shared.value[:self._consumed])

    def _offer_round(self, executor: Executor, active: List[QueryHandle],
                     shared: BroadcastHandle, lo: int,
                     hi: int) -> List[AccuracyEstimate]:
        """Feed one shared delta (``shared.value[lo:hi]``) to every
        active query's stage.

        Fans out over the configured backend when it can pay off; the
        per-query RNG streams and ordered gather keep results
        byte-identical across serial / threads / processes.  Tasks carry
        only the broadcast handle plus slice bounds — the sample itself
        was shipped once for the whole session.
        """
        if executor.is_parallel and len(active) > 1:
            work = [(q.stage, shared, lo, hi) for q in active]
            if executor.shares_memory:
                return executor.map(_offer_shared, work)
            pairs = executor.map(_offer_owned, work)
            estimates = []
            for query, (stage, estimate) in zip(active, pairs):
                query.stage = stage  # rebind the worker's mutated copy
                estimates.append(estimate)
            return estimates
        delta = shared.value[lo:hi]
        return [q.stage.offer(delta) for q in active]

    def _snapshot(self, query: QueryHandle, accuracy: AccuracyEstimate,
                  consumed: int, N: int, *, final: bool = False,
                  result: Optional[EarlResult] = None) -> ProgressSnapshot:
        p = consumed / N
        return ProgressSnapshot(
            iteration=len(query.iterations),
            estimate=query.correction(accuracy.estimate, p),
            uncorrected_estimate=accuracy.estimate,
            error=accuracy.error, cv=accuracy.cv,
            ci_low=accuracy.ci_low, ci_high=accuracy.ci_high,
            sample_size=consumed, population_size=N, sample_fraction=p,
            achieved=accuracy.meets(query.sigma), final=final,
            statistic=query.statistic.name,
            cost_delta_seconds=0.0, cost_total_seconds=0.0,
            accuracy=accuracy, result=result,
            degraded=self.degraded, lost_fraction=self.lost_fraction)

    def _query_result(self, query: QueryHandle,
                      accuracy: AccuracyEstimate, consumed: int,
                      N: int) -> EarlResult:
        p = consumed / N
        return EarlResult(
            estimate=query.correction(accuracy.estimate, p),
            uncorrected_estimate=accuracy.estimate,
            error=accuracy.error,
            achieved=accuracy.meets(query.sigma),
            sigma=query.sigma,
            statistic=query.statistic.name,
            n=consumed, B=query.B or 0,
            population_size=N, sample_fraction=p,
            used_fallback=False, simulated_seconds=0.0,
            iterations=list(query.iterations),
            ssabe=query.ssabe, accuracy=accuracy,
            degraded=self.degraded, lost_fraction=self.lost_fraction)
