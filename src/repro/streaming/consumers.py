"""Consumers over the drivers' progressive snapshot streams.

The streaming engines (``EarlSession.stream()`` / ``EarlJob.stream()``)
are plain generators, so ``for snapshot in driver.stream()`` already
works.  This module adds the two consumer styles interactive callers
actually want on top of that iterator protocol:

* :func:`stream` — an iterator *wrapper* with observer callbacks and
  declarative early-stop (a predicate or a snapshot budget).  Stopping
  — whether via the predicate, via ``break``, or via ``close()`` —
  always closes the underlying engine generator, which triggers the
  drivers' teardown: the bootstrap executor shuts down and (for
  :class:`~repro.core.EarlJob`) the stop flag is raised on the
  reducer→mapper feedback channel so the persistent mappers terminate.
  Only the iterations that completed were ever charged to the cost
  ledger.
* :class:`StreamConsumer` — a reusable observer object carrying the
  collected snapshots, the final result (when the stream ran to
  completion), and an imperative :meth:`~StreamConsumer.stop` that can
  be called from inside a callback.

Both accept anything exposing ``stream() -> Iterator[snapshot]`` whose
snapshots carry ``final`` and ``result`` — the two EARL drivers, the
grouped query engine (:class:`repro.query.Query` yielding
:class:`~repro.core.GroupedSnapshot`), and any future progressive
engine that honors the same contract.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.core.result import EarlResult, ProgressSnapshot

#: A progressive engine: anything with ``stream() -> Iterator[snapshot]``.
SnapshotCallback = Callable[[ProgressSnapshot], None]
StopPredicate = Callable[[ProgressSnapshot], bool]


def stream(driver, *,
           on_snapshot: Optional[SnapshotCallback] = None,
           stop_when: Optional[StopPredicate] = None,
           max_snapshots: Optional[int] = None
           ) -> Iterator[ProgressSnapshot]:
    """Iterate ``driver.stream()`` with callbacks and early stop.

    Parameters
    ----------
    driver:
        An :class:`~repro.core.EarlSession`, :class:`~repro.core.EarlJob`
        or any object exposing ``stream()``.
    on_snapshot:
        Called with every snapshot before it is yielded.
    stop_when:
        Early-stop predicate: when it returns ``True`` for a snapshot,
        that snapshot is still yielded and the run is then cancelled
        (the underlying generator is closed, tearing the job down).
    max_snapshots:
        Hard budget on consumed snapshots; the run is cancelled after
        yielding the budget's last snapshot.

    Closing this generator (or breaking out of a ``for`` loop over it)
    likewise cancels the underlying run.
    """
    if max_snapshots is not None and max_snapshots < 1:
        raise ValueError("max_snapshots must be positive")
    source = driver.stream()
    try:
        count = 0
        for snapshot in source:
            count += 1
            if on_snapshot is not None:
                on_snapshot(snapshot)
            yield snapshot
            if snapshot.final:
                break
            if stop_when is not None and stop_when(snapshot):
                break
            if max_snapshots is not None and count >= max_snapshots:
                break
    finally:
        source.close()


class StreamConsumer:
    """Observer-style consumer with early-stop and cancellation.

    Example
    -------
    >>> import numpy as np
    >>> from repro import EarlSession, EarlConfig
    >>> from repro.streaming import StreamConsumer
    >>> data = np.random.default_rng(0).lognormal(0, 1, 100_000)
    >>> consumer = StreamConsumer(
    ...     stop_when=lambda s: s.error < 0.08)   # looser than sigma
    >>> session = EarlSession(data, "mean",
    ...                       config=EarlConfig(sigma=0.01, seed=1))
    >>> _ = consumer.consume(session)
    >>> len(consumer.snapshots) >= 1
    True

    After :meth:`consume` returns, :attr:`snapshots` holds every
    snapshot seen, :attr:`result` the final :class:`EarlResult` (or
    ``None`` if the consumer stopped the run early), and
    :attr:`stopped_early` says which of the two happened.
    """

    def __init__(self, *,
                 on_snapshot: Optional[SnapshotCallback] = None,
                 on_final: Optional[SnapshotCallback] = None,
                 stop_when: Optional[StopPredicate] = None,
                 max_snapshots: Optional[int] = None) -> None:
        if max_snapshots is not None and max_snapshots < 1:
            raise ValueError("max_snapshots must be positive")
        self._on_snapshot = on_snapshot
        self._on_final = on_final
        self._stop_when = stop_when
        self._max_snapshots = max_snapshots
        self._stop_requested = False
        self.snapshots: List[ProgressSnapshot] = []
        self.result: Optional[EarlResult] = None
        self.stopped_early = False

    def stop(self) -> None:
        """Request cancellation; honored after the current snapshot.

        Designed to be called from inside an ``on_snapshot`` callback —
        the run is torn down before the next iteration starts.
        """
        self._stop_requested = True

    def consume(self, driver) -> Optional[EarlResult]:
        """Drive ``driver.stream()`` to completion or early stop.

        Returns the final :class:`~repro.core.EarlResult` when the run
        completed, ``None`` when this consumer cancelled it first.
        A consumer is reusable: each call starts from a clean slate
        (snapshots, result, stop state all reset).
        """
        self._stop_requested = False
        self.snapshots = []
        self.result = None
        self.stopped_early = False
        source = driver.stream()
        try:
            for snapshot in source:
                self.snapshots.append(snapshot)
                if self._on_snapshot is not None:
                    self._on_snapshot(snapshot)
                if snapshot.final:
                    self.result = snapshot.result
                    if self._on_final is not None:
                        self._on_final(snapshot)
                    return self.result
                stop = (self._stop_requested
                        or (self._stop_when is not None
                            and self._stop_when(snapshot))
                        or (self._max_snapshots is not None
                            and len(self.snapshots) >= self._max_snapshots))
                if stop:
                    self.stopped_early = True
                    return None
        finally:
            source.close()
        return self.result
