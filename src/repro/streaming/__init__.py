"""Progressive result streaming for the EARL drivers.

The paper's premise is *early* accurate results — this package makes
them observable while they are being computed.  The core drivers expose
generator engines (``EarlSession.stream()`` / ``EarlJob.stream()``)
that yield a typed :class:`~repro.core.result.ProgressSnapshot` after
every accuracy-estimation stage; this package layers the consumer side
on top:

* :func:`stream` / :class:`StreamConsumer` — observer callbacks,
  declarative early-stop, and cancellation that cleanly tears the
  underlying run down (executor shutdown, feedback-channel stop flag);
* :class:`SessionManager` — many concurrent EARL queries over one
  shared pilot and one shared growing sample, each with its own
  delta-maintained resample set, fanned out through the pluggable
  execution backends.

See DESIGN.md §4 ("Progressive result streaming") for the snapshot and
cancellation contract.
"""

from repro.core.result import ProgressSnapshot
from repro.streaming.consumers import StreamConsumer, stream
from repro.streaming.session import QueryHandle, SessionManager

__all__ = [
    "ProgressSnapshot",
    "stream",
    "StreamConsumer",
    "SessionManager",
    "QueryHandle",
]
