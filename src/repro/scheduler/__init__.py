"""Cross-query scheduler: shared scans + global sample-budget
allocation over the EARL engines (see DESIGN.md §9)."""

from repro.scheduler.budget import allocate_budget, rows_to_bound
from repro.scheduler.scheduler import QueryScheduler, ScheduledQuery

__all__ = ["QueryScheduler", "ScheduledQuery", "allocate_budget",
           "rows_to_bound"]
