"""Global sample-budget allocation across concurrent queries' arms.

Each expansion round the cross-query scheduler holds one global row
budget and must split it across every still-unfinished ``(query,
group)`` pair — the *arms* — of every admitted engine.  The policy is
expected-error-reduction: treat each arm like a bandit arm whose payoff
is variance removed per row, weight it by the classical Neyman quantity
``N_h · S_h`` **re-estimated live** (``S_h ≈ error·√n`` from the arm's
current delta-maintained bootstrap error, not the stale pilot std), and
cap it at the rows it still *needs* — bootstrap error shrinks as
``1/√n``, so an arm at error ``e`` with ``n`` rows consumed needs about
``n·((e/σ)² − 1)`` more rows to reach its bound σ.  Rows past that cap
are wasted on an arm that will terminate anyway, so the largest-
remainder split (:func:`repro.sampling.stratified.allocate_with_caps`)
redistributes them to the laggards; a one-row floor keeps every
starving arm live.

Demand records are the plain dicts the engines produce
(:meth:`~repro.streaming.SessionManager.live_demands`,
:meth:`~repro.core.grouped.GroupedEarlSession.live_demands`):
``{key, error, sigma, consumed, size, scheduled, remaining, scale,
shared}``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import REGISTRY as _METRICS
from repro.sampling.stratified import allocate_with_caps

__all__ = ["rows_to_bound", "allocate_budget"]


def rows_to_bound(error: float, sigma: float, consumed: int,
                  scheduled: int, remaining: int) -> int:
    """Rows an arm still needs to reach its error bound, capped at what
    it can still draw.

    Before any estimate exists (``error`` not finite) the arm's own
    scheduled draw is the only honest ask (the SSABE-sized pilot round
    is mandatory).  An arm already at its bound needs nothing — it will
    terminate on its next evaluation.
    """
    if remaining <= 0:
        return 0
    if not math.isfinite(error):
        need = scheduled
    elif error <= sigma or consumed <= 0:
        need = 0
    else:
        need = math.ceil(consumed * ((error / sigma) ** 2 - 1.0))
        need = max(need, 1)
    return max(0, min(need, remaining))


def allocate_budget(demands: Sequence[Dict[str, Any]],
                    total: Optional[int] = None) -> List[int]:
    """Split one round's global row budget across demand records.

    Returns per-arm grants aligned with ``demands``.  ``total`` defaults
    to the sum of the arms' own scheduled draws — the rows the engines
    would collectively consume unscheduled, so global throughput is
    preserved and only the *split* changes.  Weights are live
    ``N_h · S_h`` (falling back to population when no arm has a live
    scale yet, mirroring the stratified sampler's Neyman fallback);
    caps are each arm's needed-rows estimate; a one-row floor keeps
    every arm live.
    """
    if not demands:
        return []
    if total is None:
        total = sum(int(d["scheduled"]) for d in demands)
    total = max(int(total), 0)
    caps: List[int] = []
    weights: List[float] = []
    any_scale = any(math.isfinite(float(d["scale"])) and d["scale"] > 0
                    for d in demands)
    for d in demands:
        cap = rows_to_bound(float(d["error"]), float(d["sigma"]),
                            int(d["consumed"]), int(d["scheduled"]),
                            int(d["remaining"]))
        caps.append(cap)
        scale = float(d["scale"])
        if any_scale:
            scale = scale if math.isfinite(scale) and scale > 0 else 1.0
            weights.append(float(d["size"]) * scale)
        else:
            weights.append(float(d["size"]))
    floors = [1 if cap > 0 else 0 for cap in caps]
    grants = allocate_with_caps(weights, total, caps, floors=floors)
    if _METRICS.enabled:
        _METRICS.counter("repro_budget_allocations_total",
                         help="global budget splits computed").inc()
        _METRICS.counter("repro_budget_rows_granted_total",
                         help="sample rows granted across all arms"
                         ).inc(sum(grants))
    return grants
