"""Cross-query admission and scheduling over the EARL engines.

:class:`QueryScheduler` sits between the service layer and the engines
(:class:`~repro.core.EarlSession`,
:class:`~repro.streaming.SessionManager`,
:class:`~repro.core.grouped.GroupedEarlSession`) and adds the two
things no single engine can do alone:

* **Shared scans.**  Admitted statistic queries are grouped by scan key
  — ``(table, config)``, the uniform permuted-sample design — and every
  group runs as **one** engine: one permutation, one pilot, one
  broadcast of the shared sample (extending the PR-3 broadcast-once and
  PR-4 split-cache reuse across *queries*, not just across rounds).  A
  group of one runs as a plain :class:`~repro.core.EarlSession`, so a
  scheduled single query is byte-identical to the solo session a client
  would have run directly.  Grouped queries keep their own stratified
  engines (their design is per-group, not uniform) but share the
  columnar scan through the split cache like any other reader.
* **Global sample-budget allocation.**  Each expansion round the
  scheduler gathers live demand records from every multi-query engine —
  per ``(query, group)`` arm: current bootstrap error, bound σ, rows
  consumed, rows reachable — and splits one global row budget across
  them by expected error reduction (:mod:`repro.scheduler.budget`):
  live ``N_h·S_h`` weights, needed-rows caps, one-row liveness floors.
  Grants are injected as a per-round row cap
  (:meth:`SessionManager.run_round`) or per-group quotas
  (:meth:`GroupedEarlSession.set_round_quotas`), so finished or
  near-finished arms donate their rows to the laggards *across
  queries*, subsuming PR 5's per-session stratum reallocation.

Determinism contract: engines are built in canonical order (scan key,
then query name) regardless of submission interleaving, every engine
keeps its own seeded RNG streams, and rounds are driven in that same
canonical order — so a fixed set of (named, seeded) submissions yields
byte-identical snapshots across serial / thread / process backends and
across submission orders.  With a single admitted engine no budgeting
is applied at all: the engine runs its own schedule, preserving the
solo-session byte-identity the repo pins.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.core.config import EarlConfig
from repro.core.earl import EarlSession
from repro.core.estimators import StatisticLike, get_statistic
from repro.core.grouped import GroupedEarlSession
from repro.obs.convergence import ConvergenceTrace
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import TRACER as _TRACER
from repro.scheduler.budget import allocate_budget
from repro.streaming.session import SessionManager

__all__ = ["ScheduledQuery", "QueryScheduler"]


class ScheduledQuery:
    """Handle for one query admitted to a :class:`QueryScheduler`.

    Carries the query's snapshots as rounds complete and — once it
    terminates — its result (:class:`~repro.core.EarlResult` for
    statistic queries, :class:`~repro.core.grouped.GroupedResult` for
    grouped ones).  :meth:`cancel` withdraws the query: before the run
    starts it is simply never admitted to an engine; mid-run the
    engine-level cancel hook stops its sampling at the next round
    boundary without disturbing any co-scheduled query's randomness.
    """

    def __init__(self, name: str, kind: str,
                 params: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.kind = kind                  # "statistic" | "grouped"
        self.params = params or {}
        self.snapshots: List[Any] = []
        self.result: Optional[Any] = None
        self.cancelled = False
        self._engine_cancel = None

    @property
    def done(self) -> bool:
        return self.result is not None or self.cancelled

    def attach_cancel(self, hook) -> None:
        self._engine_cancel = hook
        if self.cancelled:
            hook()

    def cancel(self) -> None:
        """Withdraw the query (safe from any thread: flag-based)."""
        self.cancelled = True
        if self._engine_cancel is not None:
            self._engine_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.result is not None
                 else "cancelled" if self.cancelled else "pending")
        return f"ScheduledQuery({self.name!r}, {self.kind}, {state})"


# ---------------------------------------------------------------------------
# engine adapters: one stepping interface over the three engine shapes
# ---------------------------------------------------------------------------


class _SoloEngine:
    """A scan group of one uniform query: run the plain solo
    :class:`EarlSession`, stepped one snapshot per global round.

    Deliberately *not* budgetable: the solo session's schedule is the
    byte-identity reference the equivalence tests pin, and with nothing
    to share there is nothing for a budget to improve.
    """

    budgetable = False

    def __init__(self, query: ScheduledQuery, data: Any,
                 config: EarlConfig) -> None:
        self._query = query
        p = query.params
        self._session = EarlSession(
            data, p["statistic"],
            config=dataclasses.replace(
                config, sigma=p["sigma"],
                error_metric=p["error_metric"],
                B_override=p["B_override"], n_override=p["n_override"]),
            correction=p["correction"])
        self._gen: Optional[Iterator[Any]] = None
        self._done = False

    def prepare(self) -> List[Tuple[ScheduledQuery, Any]]:
        self._gen = self._session.stream()
        return []

    @property
    def pending(self) -> bool:
        return not self._done and not self._query.cancelled

    def live_demands(self) -> List[Dict[str, Any]]:
        return []

    def run_round(self, grant=None) -> List[Tuple[ScheduledQuery, Any]]:
        if not self.pending:
            return []
        snap = next(self._gen, None)
        if snap is None:
            self._done = True
            return []
        self._query.snapshots.append(snap)
        if snap.final:
            self._done = True
            self._query.result = snap.result
        return [(self._query, snap)]

    def finalize(self) -> List[Tuple[ScheduledQuery, Any]]:
        events: List[Tuple[ScheduledQuery, Any]] = []
        while self.pending:
            events.extend(self.run_round())
        return events

    def finish(self) -> None:
        gen, self._gen = self._gen, None
        if gen is not None:
            gen.close()

    @property
    def rows_processed(self) -> int:
        snaps = self._query.snapshots
        return int(snaps[-1].sample_size) if snaps else 0


class _ManagerEngine:
    """A scan group of several uniform queries: one
    :class:`SessionManager` — one pilot, one permutation, one broadcast
    — driven through its external stepping API so the scheduler can cap
    each round's shared draw."""

    budgetable = True

    def __init__(self, data: Any, config: EarlConfig,
                 members: List[ScheduledQuery]) -> None:
        self._manager = SessionManager(data, config=config)
        self._members: Dict[str, ScheduledQuery] = {}
        for query in members:
            p = query.params
            handle = self._manager.submit(
                p["statistic"], sigma=p["sigma"],
                error_metric=p["error_metric"],
                correction=p["correction"],
                B_override=p["B_override"], n_override=p["n_override"],
                name=query.name)
            query.attach_cancel(handle.cancel)
            self._members[query.name] = query

    def _wrap(self, events) -> List[Tuple[ScheduledQuery, Any]]:
        out: List[Tuple[ScheduledQuery, Any]] = []
        for handle, snap in events:
            query = self._members[handle.name]
            query.snapshots.append(snap)
            if snap.final:
                query.result = snap.result
            out.append((query, snap))
        return out

    def prepare(self) -> List[Tuple[ScheduledQuery, Any]]:
        return self._wrap(self._manager.prepare())

    @property
    def pending(self) -> bool:
        return self._manager.pending

    def live_demands(self) -> List[Dict[str, Any]]:
        return self._manager.live_demands()

    def run_round(self, grant: Optional[int] = None
                  ) -> List[Tuple[ScheduledQuery, Any]]:
        return self._wrap(self._manager.run_round(grant))

    def finalize(self) -> List[Tuple[ScheduledQuery, Any]]:
        return self._wrap(self._manager.finalize())

    def finish(self) -> None:
        self._manager.finish()

    @property
    def rows_processed(self) -> int:
        return self._manager.consumed


class _GroupedEngine:
    """One grouped query's stratified engine, stepped a round at a
    time; grants arrive as per-group quota injections."""

    budgetable = True

    def __init__(self, query: ScheduledQuery,
                 session: GroupedEarlSession) -> None:
        self._query = query
        self._session = session
        query.attach_cancel(session.cancel)
        self._gen: Optional[Iterator[Any]] = None
        self._done = False

    def prepare(self) -> List[Tuple[ScheduledQuery, Any]]:
        self._gen = self._session.stream()
        return []

    @property
    def pending(self) -> bool:
        return not self._done and not self._query.cancelled

    def live_demands(self) -> List[Dict[str, Any]]:
        if not self.pending:
            return []
        return self._session.live_demands()

    def run_round(self, grants: Optional[Dict[Hashable, int]] = None
                  ) -> List[Tuple[ScheduledQuery, Any]]:
        if not self.pending:
            return []
        if grants is not None:
            self._session.set_round_quotas(grants)
        snap = next(self._gen, None)
        if snap is None:
            self._done = True
            return []
        self._query.snapshots.append(snap)
        if snap.final:
            self._done = True
            self._query.result = snap.result
        if not snap.final and not snap.updated:
            return []   # externally-starved round: nothing to report
        return [(self._query, snap)]

    def finalize(self) -> List[Tuple[ScheduledQuery, Any]]:
        # Drain on the session's own schedule; with injection stopped,
        # its internal allocation and round caps take back over.
        events: List[Tuple[ScheduledQuery, Any]] = []
        while self.pending:
            events.extend(self.run_round())
        return events

    def finish(self) -> None:
        gen, self._gen = self._gen, None
        if gen is not None:
            gen.close()

    @property
    def rows_processed(self) -> int:
        snaps = self._query.snapshots
        return int(snaps[-1].rows_processed) if snaps else 0


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


def _config_token(config: EarlConfig) -> Hashable:
    """Hashable identity of a config for scan-key grouping (two
    statistic queries share an engine only when their whole config —
    seed, backend, expansion policy — agrees)."""
    try:
        token = dataclasses.astuple(config)
        hash(token)
        return token
    except TypeError:       # e.g. a Generator seed: identity is enough
        return id(config)


class QueryScheduler:
    """Admit concurrent queries, share scans, allocate sample budget.

    Example
    -------
    >>> import numpy as np
    >>> from repro.core import EarlConfig
    >>> from repro.scheduler import QueryScheduler
    >>> data = np.random.default_rng(0).lognormal(0, 1, 200_000)
    >>> cfg = EarlConfig(sigma=0.05, seed=1)
    >>> sched = QueryScheduler()
    >>> q1 = sched.submit_statistic(data, "mean", config=cfg, table="t")
    >>> q2 = sched.submit_statistic(data, "std", config=cfg, table="t")
    >>> results = sched.run()          # ONE pilot, ONE shared sample
    >>> sorted(results) == ["mean", "std"]
    True

    ``round_budget`` optionally fixes the global rows-per-round spend;
    by default each round spends what the admitted engines would have
    drawn anyway and only the *split* across arms changes.  A scheduler
    streams once (:meth:`stream`, or :meth:`run` which drains it).
    """

    def __init__(self, *, round_budget: Optional[int] = None) -> None:
        if round_budget is not None and round_budget < 1:
            raise ValueError("round_budget must be positive")
        self._round_budget = round_budget
        self._queries: List[ScheduledQuery] = []
        self._stat_groups: Dict[Hashable, List[ScheduledQuery]] = {}
        self._scan_data: Dict[Hashable, Tuple[Any, EarlConfig]] = {}
        self._grouped: List[Tuple[ScheduledQuery, GroupedEarlSession]] = []
        self._engines: List[Any] = []
        self._started = False
        self._cancelled = False
        #: Populated at :meth:`stream` start when telemetry is enabled:
        #: per-round convergence points, events and budget decisions.
        self.telemetry: Optional[ConvergenceTrace] = None
        self._round_no = 0
        self._t0: Optional[float] = None

    # ------------------------------------------------------------ admission
    @property
    def queries(self) -> List[ScheduledQuery]:
        return list(self._queries)

    def _claim_name(self, name: Optional[str], default: str) -> str:
        taken = {q.name for q in self._queries}
        if name is not None:
            if name in taken:
                raise ValueError(f"duplicate query name {name!r}")
            return name
        candidate, suffix = default, 2
        while candidate in taken:
            candidate = f"{default}#{suffix}"
            suffix += 1
        return candidate

    def submit_statistic(self, data: Any, statistic: StatisticLike, *,
                         config: Optional[EarlConfig] = None,
                         table: Optional[str] = None,
                         sigma: Optional[float] = None,
                         error_metric: Optional[str] = None,
                         correction: Any = "auto",
                         B_override: Optional[int] = None,
                         n_override: Optional[int] = None,
                         name: Optional[str] = None) -> ScheduledQuery:
        """Admit one uniform statistic query over ``data``.

        Queries submitted with the same ``table`` label and an equal
        ``config`` share one scan + sample engine; per-query σ / error
        metric / B / n ride on top exactly as with
        :meth:`SessionManager.submit`.  Unlabelled data groups by array
        identity.
        """
        if self._started:
            raise RuntimeError("cannot submit after streaming started")
        cfg = config or EarlConfig()
        stat = get_statistic(statistic)   # eager validation
        query = ScheduledQuery(
            self._claim_name(name, stat.name), "statistic",
            params={
                "statistic": statistic,
                "sigma": cfg.sigma if sigma is None else sigma,
                "error_metric": (cfg.error_metric if error_metric is None
                                 else error_metric),
                "correction": correction,
                "B_override": (cfg.B_override if B_override is None
                               else B_override),
                "n_override": (cfg.n_override if n_override is None
                               else n_override),
            })
        key = (table if table is not None else id(data),
               _config_token(cfg))
        self._stat_groups.setdefault(key, []).append(query)
        self._scan_data[key] = (data, cfg)
        self._queries.append(query)
        return query

    def submit_grouped(self, session: GroupedEarlSession, *,
                       name: Optional[str] = None) -> ScheduledQuery:
        """Admit one grouped query (an unstarted
        :class:`GroupedEarlSession`, e.g. from ``Query.plan()``)."""
        if self._started:
            raise RuntimeError("cannot submit after streaming started")
        query = ScheduledQuery(self._claim_name(name, "grouped"), "grouped")
        self._grouped.append((query, session))
        self._queries.append(query)
        return query

    def cancel(self) -> None:
        """Withdraw every query and stop at the next round boundary
        (safe from any thread: flag-based, like the engines)."""
        self._cancelled = True
        for query in self._queries:
            query.cancel()

    # ------------------------------------------------------------- running
    def stream(self) -> Iterator[Tuple[ScheduledQuery, Any]]:
        """Drive every admitted engine round-by-round, yielding
        ``(query, snapshot)`` events as rounds complete."""
        if self._started:
            raise RuntimeError("a QueryScheduler streams only once")
        if not self._queries:
            raise RuntimeError("no queries submitted")
        self._started = True
        if _METRICS.enabled or _TRACER.enabled:
            self.telemetry = ConvergenceTrace(name="scheduler")
            self._t0 = time.perf_counter()
            _METRICS.counter("repro_scheduler_streams_total",
                             help="scheduler dispatch windows driven").inc()
            _METRICS.counter("repro_scheduler_queries_total",
                             help="queries admitted to windows"
                             ).inc(len(self._queries))
        engines = self._build_engines()
        self._engines = engines
        try:
            with _TRACER.span("scheduler.prepare",
                              attrs={"engines": len(engines)}):
                for engine in engines:
                    if self._cancelled:
                        return
                    events = engine.prepare()
                    self._observe(0, events)
                    yield from events
            max_iters = [self._scan_data[key][1].max_iterations
                         for key in self._scan_data]
            max_iters += [session.config.max_iterations
                          for _, session in self._grouped]
            round_cap = 8 * max(max_iters, default=1)
            rounds = 0
            while not self._cancelled:
                live = [e for e in engines if e.pending]
                if not live:
                    return
                rounds += 1
                self._round_no = rounds
                if rounds > round_cap:
                    # Budget trickling exceeded the safety bound:
                    # best-effort finalize, mirroring the engines' own
                    # stalled-round behaviour.
                    for engine in live:
                        events = engine.finalize()
                        self._observe(rounds, events)
                        yield from events
                    return
                with _TRACER.span("scheduler.round",
                                  attrs={"round": rounds,
                                         "live": len(live)}):
                    grants = self._allocate(live)
                    for engine in live:
                        if self._cancelled:
                            return
                        if not engine.pending:
                            continue
                        grant = (grants.get(id(engine))
                                 if grants is not None else None)
                        events = engine.run_round(grant)
                        self._observe(rounds, events)
                        yield from events
                if _METRICS.enabled:
                    _METRICS.counter("repro_scheduler_rounds_total",
                                     help="global scheduling rounds").inc()
        finally:
            for engine in engines:
                engine.finish()

    def run(self) -> Dict[str, Optional[Any]]:
        """Drain :meth:`stream`; returns ``{name: result}`` (``None``
        for queries cancelled before terminating)."""
        for _ in self.stream():
            pass
        return {query.name: query.result for query in self._queries}

    @property
    def rows_processed(self) -> int:
        """Total distinct rows drawn across every admitted engine."""
        return sum(engine.rows_processed for engine in self._engines)

    # ------------------------------------------------------------- internals
    def _observe(self, round_no: int,
                 events: List[Tuple[ScheduledQuery, Any]]) -> None:
        """Record one round's snapshots on the convergence trace."""
        if self.telemetry is None or not events:
            return
        wall = (time.perf_counter() - self._t0
                if self._t0 is not None else None)
        for query, snap in events:
            rows = int(getattr(snap, "sample_size", 0)
                       or getattr(snap, "rows_processed", 0))
            error = getattr(snap, "error", None)
            if error is None:
                worst = getattr(snap, "worst", None)
                error = worst.error if worst is not None else None
            self.telemetry.record_round(
                query.name, round=round_no, rows=rows, error=error,
                wall_seconds=wall,
                sim_seconds=getattr(snap, "cost_total_seconds", None))
            if getattr(snap, "degraded", False):
                self.telemetry.record_event(
                    "degraded", key=query.name, round=round_no,
                    lost_fraction=getattr(snap, "lost_fraction", 0.0))

    def _build_engines(self) -> List[Any]:
        """Materialize engines in canonical order — scan key, then
        query name — so a fixed submission *set* produces the same
        engines (and the same per-query RNG streams) no matter the
        submission interleaving."""
        engines: List[Any] = []
        for key in sorted(self._stat_groups,
                          key=lambda k: (str(k[0]), str(k[1]))):
            members = [q for q in self._stat_groups[key] if not q.cancelled]
            members.sort(key=lambda q: q.name)
            if not members:
                continue
            data, cfg = self._scan_data[key]
            if len(members) == 1:
                engines.append(_SoloEngine(members[0], data, cfg))
            else:
                engines.append(_ManagerEngine(data, cfg, members))
        for query, session in sorted(self._grouped,
                                     key=lambda pair: pair[0].name):
            if query.cancelled:
                continue
            engines.append(_GroupedEngine(query, session))
        return engines

    def _allocate(self, live: List[Any]) -> Optional[Dict[int, Any]]:
        """One round's global budget split, or ``None`` to let every
        engine follow its own schedule.

        Budgeting engages only when queries actually compete — at least
        two budgetable engines, or an explicit ``round_budget`` — so a
        lone scheduled engine stays byte-identical to its unscheduled
        run.
        """
        budgetable = [e for e in live if e.budgetable]
        if self._round_budget is None and len(budgetable) < 2:
            return None
        arms: List[Tuple[Any, Dict[str, Any]]] = []
        for engine in budgetable:
            for record in engine.live_demands():
                arms.append((engine, record))
        if not arms:
            return None
        grants = allocate_budget([record for _, record in arms],
                                 self._round_budget)
        if self.telemetry is not None:
            self.telemetry.record_allocation(
                self._round_no,
                {str(record["key"]): grant
                 for (_, record), grant in zip(arms, grants)},
                total=self._round_budget)
        out: Dict[int, Any] = {}
        for (engine, record), grant in zip(arms, grants):
            if record.get("shared"):
                # Arms of a shared-sample engine read the same rows:
                # the engine's round cap is the largest arm grant, not
                # the sum.
                current = out.get(id(engine), 0)
                out[id(engine)] = max(int(current), int(grant))
            else:
                out.setdefault(id(engine), {})[record["key"]] = int(grant)
        return out
