# Developer entry points for the EARL reproduction.
#
#   make test        - tier-1 test suite (the gate every PR must keep green;
#                      excludes tests marked `slow`, see pytest.ini)
#   make test-all    - the whole suite including the slow statistical-
#                      stability tests
#   make bench       - every figure benchmark (writes benchmarks/results/)
#   make bench-smoke - quick benchmark subset (~30 s)
#   make bench-json  - kernel + ingest + query + scheduler + faults
#                      benchmarks (smoke sizes) -> benchmarks/results/
#                      BENCH_{kernel,ingest,query,scheduler,faults}.json,
#                      each gated against its committed baseline
#                      benchmarks/BENCH_*.json
#                      (fails on a >20% speedup regression)
#   make test-chaos  - the randomized chaos-harness sweeps (marker
#                      `chaos`, deselected from tier-1; see tests/chaos/)
#   make bench-service - service concurrency smoke (shared-pilot session
#                      fan-out) -> benchmarks/results/BENCH_service.json,
#                      then the full 1,000-session load harness
#                      (tests/service/test_load.py, slow tier)
#   make docs-check  - every .md referenced from code/docs actually exists
#   make examples    - run every example script end to end
#   make clean       - purge bytecode caches and tool state
#                      (__pycache__/, .pytest_cache/, .hypothesis/)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all test-chaos bench bench-smoke bench-json \
	bench-service docs-check examples clean

test:
	$(PYTHON) -m pytest -x -q

test-all:
	$(PYTHON) -m pytest -x -q -m "slow or not slow"

test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos tests/chaos

# bench_*.py does not match pytest's default test-file pattern, so the
# files are passed explicitly (explicit args are always collected).
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_fig2_bootstrap_convergence.py \
		benchmarks/bench_fig10_delta_maintenance.py \
		benchmarks/bench_exec_backends.py

# Smoke sizes only; the machine-independent gates (speedup ratio vs the
# committed baselines) live in tools/check_bench_regression.py — the
# absolute >=10x / >=5x assertions are exercised by `make bench` / full
# CLI runs.  The kernel gate keeps its historical expand-only contract.
bench-json:
	$(PYTHON) benchmarks/bench_kernel.py --smoke --no-assert \
		--out benchmarks/results/BENCH_kernel.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_kernel.json benchmarks/BENCH_kernel.json \
		--stages expand
	$(PYTHON) benchmarks/bench_ingest.py --smoke --no-assert \
		--out benchmarks/results/BENCH_ingest.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_ingest.json benchmarks/BENCH_ingest.json
	$(PYTHON) benchmarks/bench_query.py --smoke --no-assert \
		--out benchmarks/results/BENCH_query.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_query.json benchmarks/BENCH_query.json \
		--stages rows
	$(PYTHON) benchmarks/bench_scheduler.py --smoke --no-assert \
		--out benchmarks/results/BENCH_scheduler.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_scheduler.json \
		benchmarks/BENCH_scheduler.json --stages rows
	$(PYTHON) benchmarks/bench_faults.py --smoke --no-assert \
		--out benchmarks/results/BENCH_faults.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_faults.json benchmarks/BENCH_faults.json \
		--stages recovery

bench-service:
	$(PYTHON) benchmarks/bench_service.py \
		--out benchmarks/results/BENCH_service.json
	$(PYTHON) -m pytest -q -m slow tests/service/test_load.py

docs-check:
	$(PYTHON) tools/check_docs.py

examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) $$f > /dev/null; \
	done; echo "all examples ran"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
	@echo "bytecode and tool caches purged"
