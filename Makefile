# Developer entry points for the EARL reproduction.
#
#   make test        - tier-1 test suite (the gate every PR must keep green;
#                      excludes tests marked `slow`, see pytest.ini)
#   make test-all    - the whole suite including the slow statistical-
#                      stability tests
#   make bench       - every figure benchmark (writes benchmarks/results/)
#   make bench-smoke - quick benchmark subset (~30 s)
#   make bench-json  - kernel + ingest + query + scheduler + faults +
#                      durability + telemetry benchmarks (smoke sizes) ->
#                      benchmarks/results/BENCH_{kernel,ingest,query,
#                      scheduler,faults,durability,telemetry}.json, each
#                      gated against its committed baseline
#                      benchmarks/BENCH_*.json
#                      (fails on a >20% speedup regression)
#   make test-chaos  - the randomized chaos-harness sweeps (marker
#                      `chaos`, deselected from tier-1; see tests/chaos/)
#   make test-durability - the crash-recovery suite: store contract,
#                      engine checkpoints, restart byte-identity (incl.
#                      the SIGKILL subprocess drill) and the
#                      kill-and-restart chaos sweep
#   make bench-service - service concurrency smoke (shared-pilot session
#                      fan-out) -> benchmarks/results/BENCH_service.json,
#                      then the full 1,000-session load harness
#                      (tests/service/test_load.py, slow tier)
#   make docs-check  - every .md referenced from code/docs actually exists
#   make examples    - run every example script end to end
#   make clean       - purge bytecode caches, tool state and stray
#                      durable-store directories (__pycache__/,
#                      .pytest_cache/, .hypothesis/, var/)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all test-chaos test-durability bench bench-smoke \
	bench-json bench-service docs-check examples clean

test:
	$(PYTHON) -m pytest -x -q

test-all:
	$(PYTHON) -m pytest -x -q -m "slow or not slow"

test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos tests/chaos

# The whole durability surface in one go: the SessionStore contract,
# the engine checkpoint/replay contract, crash-recovery byte-identity
# (including the real-SIGKILL subprocess drill) and the randomized
# kill-and-restart chaos sweep.
test-durability:
	$(PYTHON) -m pytest -x -q -m "chaos or not chaos" \
		tests/service/test_store_contract.py \
		tests/core/test_checkpoint.py \
		tests/service/test_restart.py \
		tests/chaos/test_kill_restart.py

# bench_*.py does not match pytest's default test-file pattern, so the
# files are passed explicitly (explicit args are always collected).
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_fig2_bootstrap_convergence.py \
		benchmarks/bench_fig10_delta_maintenance.py \
		benchmarks/bench_exec_backends.py

# Smoke sizes only; the machine-independent gates (speedup ratio vs the
# committed baselines) live in tools/check_bench_regression.py — the
# absolute >=10x / >=5x assertions are exercised by `make bench` / full
# CLI runs.  The kernel gate keeps its historical expand-only contract.
bench-json:
	$(PYTHON) benchmarks/bench_kernel.py --smoke --no-assert \
		--out benchmarks/results/BENCH_kernel.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_kernel.json benchmarks/BENCH_kernel.json \
		--stages expand
	$(PYTHON) benchmarks/bench_ingest.py --smoke --no-assert \
		--out benchmarks/results/BENCH_ingest.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_ingest.json benchmarks/BENCH_ingest.json
	$(PYTHON) benchmarks/bench_query.py --smoke --no-assert \
		--out benchmarks/results/BENCH_query.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_query.json benchmarks/BENCH_query.json \
		--stages rows
	$(PYTHON) benchmarks/bench_scheduler.py --smoke --no-assert \
		--out benchmarks/results/BENCH_scheduler.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_scheduler.json \
		benchmarks/BENCH_scheduler.json --stages rows
	$(PYTHON) benchmarks/bench_faults.py --smoke --no-assert \
		--out benchmarks/results/BENCH_faults.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_faults.json benchmarks/BENCH_faults.json \
		--stages recovery
	$(PYTHON) benchmarks/bench_durability.py --smoke --no-assert \
		--out benchmarks/results/BENCH_durability.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_durability.json \
		benchmarks/BENCH_durability.json --stages durability
	$(PYTHON) benchmarks/bench_telemetry.py --smoke --no-assert \
		--out benchmarks/results/BENCH_telemetry.json
	$(PYTHON) tools/check_bench_regression.py \
		benchmarks/results/BENCH_telemetry.json \
		benchmarks/BENCH_telemetry.json --stages telemetry

bench-service:
	$(PYTHON) benchmarks/bench_service.py \
		--out benchmarks/results/BENCH_service.json
	$(PYTHON) -m pytest -q -m slow tests/service/test_load.py

docs-check:
	$(PYTHON) tools/check_docs.py

examples:
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) $$f > /dev/null; \
	done; echo "all examples ran"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
	rm -rf var
	find . -name "sessions.wal*" -not -path "./.git/*" -delete
	@echo "bytecode, tool caches and durable-store state purged"
